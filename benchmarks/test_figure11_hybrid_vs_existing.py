"""Figure 11: the full engine vs Momentum and Hotspot, per phase.

Shapes to reproduce: the hybrid is at least as good as the baselines in
Foraging, and clearly better in Navigation (paper: up to +25%) and
Sensemaking (paper: +10-18%).
"""

from conftest import is_full_scale, print_report

from repro.experiments.runner import run_figure11

import pytest

pytestmark = pytest.mark.bench


def test_figure11_hybrid_vs_existing(context, benchmark):
    def compute():
        return run_figure11(context)

    tables, comparison = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_report(*tables, comparison)

    by_phase = {t.title.split("— ")[-1]: t for t in tables}
    overall = {r[0]: [float(v) for v in r[1:]] for r in by_phase["overall"].rows}
    # Accuracies are accuracies, at any scale.
    for values in overall.values():
        assert all(0.0 <= v <= 1.0 for v in values)
    if is_full_scale(context):
        # At the paper's headline budgets (k=3..5) the hybrid beats both
        # baselines in every phase group.  (At k >= 6 a pan-only baseline
        # trivially covers all four pans, closing the sensemaking gap; the
        # paper's own Figure 11 also converges there.  On a downscaled
        # world the baselines saturate much earlier, so the dominance
        # claim is full-scale-only — same reasoning as Figure 13's.)
        for phase in ("navigation", "sensemaking", "overall"):
            series = {
                r[0]: [float(v) for v in r[1:]] for r in by_phase[phase].rows
            }
            for i in (2, 3, 4):
                assert series["hybrid"][i] >= series["momentum"][i] - 0.02, (phase, i)
                assert series["hybrid"][i] >= series["hotspot"][i] - 0.02, (phase, i)
        for i in range(1, len(overall["hybrid"])):
            assert overall["hybrid"][i] >= overall["momentum"][i] - 0.02, i
            assert overall["hybrid"][i] >= overall["hotspot"][i] - 0.02, i

        nav_gap = float(comparison.rows[0][2])
        assert nav_gap > 0.1  # paper: up to +0.25
