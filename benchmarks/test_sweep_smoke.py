"""End-to-end sweep harness smoke: real serving stack, real gate.

The fast tier (``tests/test_sweep.py``) exercises the harness with
injected fake runners; this bench-tier smoke runs an actual downscaled
grid through :class:`~repro.middleware.service.ForeCacheService` (both
front ends), snapshots it, and proves the regression gate's two
acceptance behaviors on *real* numbers:

- an unmodified re-run of the same sweep gates clean (determinism:
  identical virtual metrics), and
- a doctored snapshot with an above-tolerance latency regression makes
  ``compare`` fail.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments.sweep import (
    SweepSpec,
    build_snapshot,
    compare_snapshots,
    load_snapshot,
    run_sweep,
    write_snapshot,
)

pytestmark = pytest.mark.bench

#: A mini CI-shaped grid: every workload, both front ends, background
#: prefetch with settle — the exact determinism regime the committed
#: trajectory uses, at ~1/8 the cell count.
MINI_CI = {
    "name": "mini-ci",
    "parameters": {
        "workload": ["study", "convergent", "adversarial", "flash_crowd"],
        "frontend": ["inprocess", "socket"],
    },
    "fixed": {
        "users": 2,
        "size": 256,
        "prefetch_mode": "background",
        "prefetch_workers": 1,
        "settle": True,
        "shared_hotspots": "boost",
        "steps": 24,
        "max_requests": 30,
        "seed": 7,
    },
}


def test_sweep_snapshot_gate_end_to_end(tmp_path):
    spec = SweepSpec.from_dict(MINI_CI)

    first = run_sweep(spec, tmp_path / "a")
    assert len(first.executed) == len(spec.cells())
    for result in first.results:
        assert result.metrics["requests"] > 0
        assert 0.0 <= result.metrics["hit_rate"] <= 1.0

    # Determinism across independent runs: the gate's foundation.
    second = run_sweep(spec, tmp_path / "b")
    for a, b in zip(first.results, second.results):
        for metric in ("requests", "hits", "hit_rate", "avg_ms", "p95_ms", "p99_ms"):
            assert a.metrics[metric] == b.metrics[metric], (
                a.cell_id,
                metric,
            )

    # Front-end equivalence: socket and in-process virtual numbers match.
    by_id = {r.cell_id: r for r in first.results}
    for cell_id, result in by_id.items():
        if "frontend=socket" not in cell_id:
            continue
        twin = by_id[cell_id.replace("frontend=socket", "frontend=inprocess")]
        assert result.metrics["hit_rate"] == twin.metrics["hit_rate"]
        assert result.metrics["avg_ms"] == twin.metrics["avg_ms"]

    baseline = build_snapshot(spec, first.results, git_sha="base")
    current = build_snapshot(spec, second.results, git_sha="cur")
    path = write_snapshot(baseline, tmp_path / "traj")
    assert load_snapshot(path) == baseline

    report = compare_snapshots(baseline, current)
    assert report.ok, report.render()

    doctored = json.loads(json.dumps(current))
    victim = next(iter(doctored["cells"]))
    doctored["cells"][victim]["metrics"]["p95_ms"] *= 2.0
    bad = compare_snapshots(baseline, doctored)
    assert not bad.ok
    assert bad.regressions[0].cell_id == victim


def test_committed_trajectory_gates_clean_on_this_tree():
    """The committed ``benchmarks/trajectory`` snapshot must describe a
    sweep this tree can still *load and self-compare* — the cheap
    standing guarantee that ``compare`` passes on an unmodified tree."""
    from pathlib import Path

    from repro.experiments.sweep import latest_snapshot, resolve_spec

    trajectory = Path(__file__).parent / "trajectory"
    path = latest_snapshot(trajectory)
    assert path is not None, "no committed BENCH_*.json snapshot"
    snapshot = load_snapshot(path)
    spec = SweepSpec.from_dict(snapshot["spec"])
    assert {cell.cell_id for cell in spec.cells()} == set(snapshot["cells"])
    assert spec.to_dict() == resolve_spec("ci").to_dict()
    report = compare_snapshots(snapshot, snapshot)
    assert report.ok and report.compared_cells == len(snapshot["cells"])
