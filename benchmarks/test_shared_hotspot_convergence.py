"""Cross-user shared hotspot prediction on convergent workloads.

The serving-layer claim of this PR made measurable: when many users
converge on the same region, a *live* shared popularity model lets
later users' prefetching profit from earlier users' traffic.  The
workload (``repro.users.convergent``) approaches one hot tile along
L-shaped paths from four corners with a momentum-hostile turn in each;
the cache is the Section 5.2.2 one-slot shape, so a hit is exactly a
correct prediction — cache warming cannot masquerade as prediction
sharing.

Asserted:

- ``shared_hotspots="boost"`` strictly beats ``"off"`` on cross-user
  (users 2..N) hit rate — the isolated baseline physically cannot learn
  the turn, the shared model can;
- ``"observe"`` replays bit-identically to ``"off"`` (collection alone
  changes nothing) while still accumulating the popularity signal;
- the background scheduler path under ``"boost"`` serves the same
  workload cleanly (smoke: threaded sessions, shared worker pool).
"""

from __future__ import annotations

import os
import threading

import pytest

from repro.core.engine import PredictionEngine
from repro.core.allocation import SingleModelStrategy
from repro.middleware.config import CacheConfig, PrefetchPolicy, ServiceConfig
from repro.middleware.service import ForeCacheService
from repro.modis.dataset import MODISDataset
from repro.recommenders.hotspot import HotspotRecommender
from repro.users.convergent import (
    convergent_walks,
    cross_user_hit_rate,
    replay_walks,
)

pytestmark = pytest.mark.bench

#: Convergent users; REPRO_USERS scales it inside a [3, 12] band.
NUM_USERS = max(3, min(12, int(os.environ.get("REPRO_USERS", "8"))))


@pytest.fixture(scope="module")
def pyramid():
    return MODISDataset.build(size=256, tile_size=32, days=1, seed=3).pyramid


def engine_factory(grid):
    def factory() -> PredictionEngine:
        model = HotspotRecommender(num_hotspots=1, proximity=4)
        return PredictionEngine(
            grid, {model.name: model}, SingleModelStrategy(model.name)
        )

    return factory


def run_mode(pyramid, mode: str, walks):
    """Sequential deterministic replay; returns per-user recorders."""
    config = ServiceConfig(
        prefetch=PrefetchPolicy(k=1, shared_hotspots=mode),
        # One prefetch slot, one recent slot: a hit IS a correct
        # prediction (the Section 5.2.2 equivalence).
        cache=CacheConfig(recent_capacity=1, prefetch_capacity=1),
    )
    with ForeCacheService(
        pyramid, config, engine_factory=engine_factory(pyramid.grid)
    ) as service:
        return replay_walks(service, walks)


def test_shared_boost_beats_isolated_cross_user_hit_rate(pyramid):
    """The headline claim: cross-user hit rate under live sharing
    strictly exceeds the isolated baseline on convergent traces."""
    walks = convergent_walks(pyramid.grid, num_users=NUM_USERS)
    results = {
        mode: run_mode(pyramid, mode, walks) for mode in ("off", "boost")
    }
    rates = {
        mode: cross_user_hit_rate(recorders)
        for mode, recorders in results.items()
    }

    print()
    for mode, recorders in results.items():
        per_user = " ".join(
            f"{recorder.hits}/{recorder.count}" for recorder in recorders
        )
        print(
            f"{NUM_USERS} users/{mode:<6}: cross-user hit rate "
            f"{rates[mode]:.3f}   (per user: {per_user})"
        )

    for mode, recorders in results.items():
        assert len(recorders) == NUM_USERS
        assert all(
            recorder.count == len(walks[0]) for recorder in recorders
        )
    # Strict: later users get hits predicted from other users' behavior.
    assert rates["boost"] > rates["off"]
    # The first user has no one to learn from: cold start must not be
    # where the win comes from.
    assert results["boost"][0].hits <= results["off"][0].hits + 1


def test_observe_mode_replays_identically_to_off(pyramid):
    walks = convergent_walks(pyramid.grid, num_users=NUM_USERS)
    off = [r.to_dict() for r in run_mode(pyramid, "off", walks)]
    observe = [r.to_dict() for r in run_mode(pyramid, "observe", walks)]
    assert observe == off


def test_boost_background_threaded_smoke(pyramid):
    """The same convergent workload, threaded, over the background
    scheduler with the hotspot rank boost active: every request served,
    clean drain, registry totals exact."""
    grid = pyramid.grid
    walks = convergent_walks(grid, num_users=NUM_USERS)
    config = ServiceConfig(
        prefetch=PrefetchPolicy(
            k=4,
            mode="background",
            workers=4,
            shared_hotspots="boost",
        ),
        cache=CacheConfig(recent_capacity=8, prefetch_capacity=8, shards=4),
    )
    errors: list[BaseException] = []
    with ForeCacheService(
        pyramid, config, engine_factory=engine_factory(grid)
    ) as service:
        handles = [
            service.open_session(session_id=f"user-{index}")
            for index in range(NUM_USERS)
        ]

        def drive(index: int) -> None:
            try:
                for move, key in walks[index]:
                    handles[index].request(move, key)
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=drive, args=(index,))
            for index in range(NUM_USERS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert service.drain(timeout=60)
        expected = sum(len(walk) for walk in walks)
        assert service.hotspot_registry.total_observations == expected
        assert (
            sum(handle.recorder.count for handle in handles) == expected
        )
