"""Loopback socket throughput vs. the in-process transport.

The transport-boundary cost made physical: the same seeded random walks
are replayed by concurrent sessions through (a) the in-process wire
transport — full JSON round trip, no socket — and (b) the real TCP
socket transport over loopback, in both framings.  Each run reports
wall-clock p50/p95 request latency and aggregate requests/second.

The socket path pays serialization *plus* kernel round trips, so it
cannot beat in-process; the benchmark asserts it stays within an
order-of-magnitude envelope (loopback framing overhead must stay
transport-bounded, not service-bounded) and that every front end serves
the identical request count.  Scale down with ``REPRO_USERS``.
"""

from __future__ import annotations

import os
import random
import threading
import time

import pytest

from repro.core.allocation import SingleModelStrategy
from repro.core.engine import PredictionEngine
from repro.middleware.config import PrefetchPolicy, ServiceConfig
from repro.middleware.latency import nearest_rank_percentile as percentile
from repro.middleware.net import SocketTransport, ThreadedSocketServer
from repro.middleware.service import ForeCacheService
from repro.middleware.transport import InProcessTransport
from repro.modis.dataset import MODISDataset
from repro.recommenders.momentum import MomentumRecommender

pytestmark = pytest.mark.bench

NUM_USERS = max(2, min(8, int(os.environ.get("REPRO_USERS", "4"))))
STEPS_PER_USER = 40
CONFIG = ServiceConfig(
    prefetch=PrefetchPolicy(k=5),
)
TRANSPORTS = ("inprocess", "socket-lines", "socket-length")


def make_engine(grid) -> PredictionEngine:
    model = MomentumRecommender()
    return PredictionEngine(
        grid, {model.name: model}, SingleModelStrategy(model.name)
    )


@pytest.fixture(scope="module")
def world() -> MODISDataset:
    return MODISDataset.build(size=512, tile_size=32, days=1, seed=7)


def random_walk(session, steps: int, seed: int) -> list[float]:
    """Drive one session on a seeded random walk; returns wall seconds
    per request."""
    rng = random.Random(seed)
    waits = []
    start = time.perf_counter()
    session.start()
    waits.append(time.perf_counter() - start)
    for _ in range(steps):
        moves = session.available_moves
        if not moves:
            break
        move = rng.choice(moves)
        start = time.perf_counter()
        session.move(move)
        waits.append(time.perf_counter() - start)
    return waits


def run_transport(world: MODISDataset, kind: str):
    """Replay NUM_USERS concurrent walks; returns (waits, request_count,
    wall_seconds)."""
    from repro.middleware.client import BrowsingSession

    pyramid = world.pyramid
    all_waits: list[list[float]] = [[] for _ in range(NUM_USERS)]
    errors: list[BaseException] = []

    def drive(connect):
        def body(index: int) -> None:
            try:
                conn = connect(index)
                all_waits[index] = random_walk(
                    BrowsingSession(conn), STEPS_PER_USER, seed=1000 + index
                )
                conn.close()
            except BaseException as exc:  # surfaced by the assert below
                errors.append(exc)

        threads = [
            threading.Thread(target=body, args=(i,))
            for i in range(NUM_USERS)
        ]
        begin = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return time.perf_counter() - begin

    if kind == "inprocess":
        with ForeCacheService(
            pyramid, CONFIG, engine_factory=lambda: make_engine(pyramid.grid)
        ) as service:
            transport = InProcessTransport(service)
            wall = drive(lambda index: transport.connect())
    else:
        framing = "length" if kind.endswith("length") else "lines"
        with ThreadedSocketServer(
            pyramid,
            CONFIG,
            engine_factory=lambda: make_engine(pyramid.grid),
            framing=framing,
        ) as server:
            transports = []

            def connect(index):
                transport = SocketTransport(
                    *server.address, pyramid=pyramid, framing=framing
                )
                transports.append(transport)
                return transport.connect()

            wall = drive(connect)
            for transport in transports:
                transport.close()
    assert errors == []
    waits = [w for per_user in all_waits for w in per_user]
    return waits, len(waits), wall


def test_loopback_socket_throughput(world, benchmark):
    results = {}
    for kind in TRANSPORTS:
        waits, count, wall = run_transport(world, kind)
        results[kind] = {
            "requests": count,
            "p50_ms": percentile(waits, 0.50) * 1000.0,
            "p95_ms": percentile(waits, 0.95) * 1000.0,
            "rps": count / wall if wall else float("inf"),
        }

    print("\ntransport        requests   p50(ms)   p95(ms)     req/s")
    for kind, row in results.items():
        print(
            f"{kind:<16} {row['requests']:>8} {row['p50_ms']:>9.3f} "
            f"{row['p95_ms']:>9.3f} {row['rps']:>9.0f}"
        )

    # Identical walks on every transport serve identical request counts.
    counts = {row["requests"] for row in results.values()}
    assert len(counts) == 1
    # Loopback overhead stays transport-bounded: the socket's median
    # must sit within 25x of the in-process wire round trip (generous —
    # CI machines jitter — yet far below any service-bound regression,
    # which would show up as 100x+ when a lock or the event loop
    # serializes requests).
    baseline = max(results["inprocess"]["p50_ms"], 0.05)
    for kind in ("socket-lines", "socket-length"):
        assert results[kind]["p50_ms"] <= baseline * 25.0, results

    # Time one representative socket round trip for the benchmark table.
    pyramid = world.pyramid
    with ThreadedSocketServer(
        pyramid, CONFIG, engine_factory=lambda: make_engine(pyramid.grid)
    ) as server:
        with SocketTransport(*server.address, pyramid=pyramid) as transport:
            conn = transport.connect()
            root = pyramid.grid.root
            benchmark.pedantic(
                lambda: conn.handle_request(None, root),
                rounds=30,
                iterations=1,
            )
            conn.close()


# ----------------------------------------------------------------------
# negotiated binary payloads vs. the JSON wire
# ----------------------------------------------------------------------
def run_payload_walk(
    world: MODISDataset,
    payload: str,
    clients: int = NUM_USERS,
    steps: int = STEPS_PER_USER,
):
    """Replay seeded walks over loopback with one payload encoding.

    Returns ``(waits, requests, wall_seconds, bytes_received)`` where
    ``bytes_received`` is every server->client byte that crossed the
    socket, summed over all clients (the transports' always-on wire
    counters).
    """
    from repro.middleware.client import BrowsingSession

    pyramid = world.pyramid
    all_waits: list[list[float]] = [[] for _ in range(clients)]
    received = [0] * clients
    errors: list[BaseException] = []

    with ThreadedSocketServer(
        pyramid,
        CONFIG,
        engine_factory=lambda: make_engine(pyramid.grid),
        framing="length",
    ) as server:

        def body(index: int) -> None:
            try:
                with SocketTransport(
                    *server.address,
                    pyramid=pyramid,
                    framing="length",
                    payload=payload,
                ) as transport:
                    assert transport.payload == payload
                    conn = transport.connect()
                    all_waits[index] = random_walk(
                        BrowsingSession(conn), steps, seed=1000 + index
                    )
                    conn.close()
                    received[index] = transport.bytes_received
            except BaseException as exc:
                errors.append(exc)

        threads = [
            threading.Thread(target=body, args=(i,)) for i in range(clients)
        ]
        begin = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - begin
    assert errors == []
    waits = [w for per_user in all_waits for w in per_user]
    return waits, len(waits), wall, sum(received)


def test_binary_payload_beats_json(world, benchmark):
    """Equal workload, both encodings: binary must strictly win on both
    bytes-per-tile and median latency (it ships raw array bytes instead
    of ~70 KB of JSON float lists per tile)."""
    results = {}
    for payload in ("json", "binary"):
        waits, count, wall, received = run_payload_walk(world, payload)
        results[payload] = {
            "requests": count,
            "p50_ms": percentile(waits, 0.50) * 1000.0,
            "p95_ms": percentile(waits, 0.95) * 1000.0,
            "rps": count / wall if wall else float("inf"),
            "bytes_per_tile": received / count,
        }

    print("\npayload   requests   p50(ms)   p95(ms)     req/s   bytes/tile")
    for payload, row in results.items():
        print(
            f"{payload:<9} {row['requests']:>7} {row['p50_ms']:>9.3f} "
            f"{row['p95_ms']:>9.3f} {row['rps']:>9.0f} "
            f"{row['bytes_per_tile']:>12.0f}"
        )

    # Identical seeded walks serve identical request counts.
    assert results["json"]["requests"] == results["binary"]["requests"]
    # The headline claims, both strict: fewer wire bytes per tile AND a
    # better median round trip at the same workload.
    assert (
        results["binary"]["bytes_per_tile"]
        < results["json"]["bytes_per_tile"]
    ), results
    assert results["binary"]["p50_ms"] < results["json"]["p50_ms"], results

    # One representative binary round trip for the benchmark table.
    pyramid = world.pyramid
    with ThreadedSocketServer(
        pyramid, CONFIG, engine_factory=lambda: make_engine(pyramid.grid)
    ) as server:
        with SocketTransport(
            *server.address, pyramid=pyramid, payload="binary"
        ) as transport:
            conn = transport.connect()
            root = pyramid.grid.root
            benchmark.pedantic(
                lambda: conn.handle_request(None, root),
                rounds=30,
                iterations=1,
            )
            conn.close()


def test_binary_frame_bytes_reduced_5x_on_256px_block():
    """The acceptance bar from the wire redesign: on the 256px days=1
    attribute block (four float64 32x32 attributes) the binary frame
    must be at least 5x smaller than its JSON form."""
    from repro.middleware import protocol

    dataset = MODISDataset.build(size=256, tile_size=32, days=1, seed=7)
    pyramid = dataset.pyramid
    tile, _ = pyramid.fetch_tile_timed(pyramid.grid.root)
    json_response = protocol.TileResponse(
        session_id="bench",
        tile=protocol.TileRef.from_key(tile.key),
        latency_seconds=0.0,
        hit=True,
        payload=protocol.TilePayload.from_tile(tile),
    )
    binary_response = protocol.TileResponse(
        session_id="bench",
        tile=protocol.TileRef.from_key(tile.key),
        latency_seconds=0.0,
        hit=True,
        payload=protocol.TilePayload.from_tile(tile, binary=True),
    )
    json_frame = protocol.encode_wire(json_response, "length")
    binary_frame = protocol.encode_wire(binary_response, "binary")
    ratio = len(json_frame) / len(binary_frame)
    print(
        f"\n256px block frame bytes: json={len(json_frame)} "
        f"binary={len(binary_frame)} ({ratio:.2f}x)"
    )
    assert ratio >= 5.0, (len(json_frame), len(binary_frame))


SCALING_CLIENTS = (1, 8, 64)


def test_concurrent_connection_scaling(world):
    """The scaling curve: 1 -> 8 -> 64 concurrent binary connections on
    one server, fixed total request volume, must all complete with every
    request served (the native-async hit path keeps the loop free)."""
    rows = {}
    for clients in SCALING_CLIENTS:
        steps = max(2, 128 // clients)
        waits, count, wall, received = run_payload_walk(
            world, "binary", clients=clients, steps=steps
        )
        rows[clients] = {
            "requests": count,
            "p50_ms": percentile(waits, 0.50) * 1000.0,
            "p95_ms": percentile(waits, 0.95) * 1000.0,
            "rps": count / wall if wall else float("inf"),
        }
        # Every client finished its whole walk: start + one per step.
        assert count == clients * (steps + 1), rows

    print("\nclients   requests   p50(ms)   p95(ms)     req/s")
    for clients, row in rows.items():
        print(
            f"{clients:>7} {row['requests']:>10} {row['p50_ms']:>9.3f} "
            f"{row['p95_ms']:>9.3f} {row['rps']:>9.0f}"
        )
    # Concurrency must scale throughput, not collapse it: 64 clients
    # must clear more requests per second than a single connection
    # (loose on purpose — CI jitter — but a serialized loop would fail).
    assert rows[64]["rps"] > rows[1]["rps"], rows
