"""Figure 13 / Section 5.5: average response times per model and k.

Paper at k=5: hybrid 185 ms vs Momentum 349 ms and Hotspot 360 ms; a
430% improvement over the 984 ms no-prefetching baseline and 88% over
Momentum.  Shapes to reproduce: the hybrid's curve sits below the
baselines for k >= 3, and the improvement factors are of the same
order.
"""

from conftest import is_full_scale, print_report

from repro.experiments.latency import figure13_violations, improvement_percent
from repro.experiments.report import Comparison, Table
from repro.middleware.latency import MISS_SECONDS

import pytest

pytestmark = pytest.mark.bench


def test_figure13_latency(context, latency_points, benchmark):
    points, _ = latency_points
    by_model: dict[str, dict[int, float]] = {}
    for p in points:
        by_model.setdefault(p.model, {})[p.k] = p.average_latency_ms
    ks = sorted(next(iter(by_model.values())))

    table = Table(
        ["model"] + [f"k={k}" for k in ks],
        title="Figure 13: average response time (ms)",
    )
    for model, series in by_model.items():
        table.add_row(model, *(series[k] for k in ks))

    no_prefetch = MISS_SECONDS * 1000.0
    hybrid5 = by_model["hybrid"][5]
    comparison = Comparison("Section 5.5 — headline latencies (k=5)")
    comparison.add("hybrid avg latency (ms)", 185.0, hybrid5)
    comparison.add("momentum avg latency (ms)", 349.0, by_model["momentum"][5])
    comparison.add("hotspot avg latency (ms)", 360.0, by_model["hotspot"][5])
    vs_none = benchmark.pedantic(
        lambda: improvement_percent(no_prefetch, hybrid5), rounds=1, iterations=1
    )
    comparison.add("improvement vs no prefetching (%)", 430.0, vs_none)
    comparison.add(
        "improvement vs momentum (%)",
        88.0,
        improvement_percent(by_model["momentum"][5], hybrid5),
    )
    print_report(table, comparison)

    # Hybrid below both baselines (every k >= 3 at full scale; downscaled
    # worlds check the headline k only — see figure13_violations) and
    # interactive at k=5: average well under the paper's 500 ms bar.
    assert figure13_violations(
        by_model, full_scale=is_full_scale(context)
    ) == []
    # Several-fold improvement over no prefetching.
    assert vs_none > 200.0
