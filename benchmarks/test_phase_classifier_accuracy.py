"""Section 5.4.1: the full phase classifier reaches ~82% LOO accuracy,
with some users above 90%."""

from conftest import print_report

from repro.experiments.runner import run_phase_classifier
from repro.phases.classifier import PhaseClassifier
from repro.phases.features import trace_features

import pytest

pytestmark = pytest.mark.bench


def test_phase_classifier_accuracy(context, benchmark):
    comparison = run_phase_classifier(context)
    print_report(comparison)

    overall = float(comparison.rows[0][2])
    best = float(comparison.rows[1][2])
    # Paper: 82% overall; we accept the same ballpark.
    assert overall > 0.7
    assert best > overall

    # Unit of work: training one classifier on 17 users' traces.
    train = context.study.excluding_user(context.study.user_ids[0])

    def fit_once():
        return PhaseClassifier().fit_traces(train)

    classifier = benchmark.pedantic(fit_once, rounds=1, iterations=1)
    features, labels = trace_features(context.study.by_user(context.study.user_ids[0]))
    assert classifier.accuracy(features, labels) > 0.5
