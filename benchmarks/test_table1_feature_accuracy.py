"""Table 1: per-feature SVM phase-classification accuracy.

Paper values: x .676, y .692, zoom .696, pan .580, zoom-in .556,
zoom-out .448.  Shape to reproduce: positional/zoom features beat the
one-hot move flags, and zoom-out is the weakest signal.
"""

from conftest import is_full_scale, print_report

from repro.experiments.crossval import classifier_cv_accuracy
from repro.experiments.runner import run_table1

import pytest

pytestmark = pytest.mark.bench


def test_table1_feature_accuracy(context, benchmark):
    table, comparison = run_table1(context)
    print_report(table, comparison)

    measured = {
        metric: float(value) for metric, _, value in comparison.rows
    }
    position_like = [measured["x_position"], measured["y_position"], measured["zoom_level"]]
    flag_like = [measured["pan_flag"], measured["zoom_in_flag"], measured["zoom_out_flag"]]
    if is_full_scale(context):
        # Shape: the positional features carry more signal than move
        # flags, and zoom-out is the weakest single feature (paper:
        # 0.448, last).  The per-feature ranking needs the full study's
        # trace diversity; with a handful of downscaled users the SVM's
        # single-feature folds are too noisy to order reliably.
        assert max(position_like) > max(flag_like)
        assert measured["zoom_out_flag"] <= min(position_like)
    # Even the weakest feature carries some signal (a single binary
    # flag cannot separate three classes; the paper's 0.448 and our
    # value are both below the majority baseline).
    assert min(measured.values()) > 0.2

    # Unit of work: one single-feature LOO fold evaluation.
    benchmark.pedantic(
        lambda: classifier_cv_accuracy(context.study, feature_indices=[2]),
        rounds=1,
        iterations=1,
    )
