"""Acceptance bench for continuous push prefetch.

Two claims, per the Khameleon-style push design:

1. Under cross-session cache contention, push-on strictly beats
   pull-only on *client-observed* hit rate — and is no worse at the
   p95 latency — on both the convergent and flash-crowd workloads with
   four concurrent socket sessions sharing one bounded downstream
   budget.  Contention is real: the shared server cache is sized so
   that four interleaved users evict each other's prefetched tiles;
   tiles pushed into a client's local cache are immune.

2. The push machinery is invisible when off: with ``push="off"`` the
   momentum figure replay is bit-identical on all four front ends
   (server, service, async, socket) to the pre-push pinned value.
"""

from __future__ import annotations

import pytest

from repro.core.allocation import SingleModelStrategy
from repro.core.engine import PredictionEngine
from repro.experiments.context import ExperimentContext
from repro.experiments.runner import REPLAY_FRONTENDS, replay_model_latency
from repro.middleware.config import CacheConfig, PrefetchPolicy, ServiceConfig
from repro.middleware.latency import LatencyRecorder
from repro.middleware.net import SocketTransport, ThreadedSocketServer
from repro.modis.dataset import MODISDataset
from repro.recommenders.momentum import MomentumRecommender
from repro.users.convergent import convergent_walks
from repro.users.flashcrowd import flash_crowd_walks

pytestmark = pytest.mark.bench

NUM_USERS = 4
K = 4
#: Bounded downstream budget shared by all sessions.  A 32x32-tile JSON
#: frame is ~71 KiB at this scale, so the 160 KiB per-session round
#: allowance streams at most 2 of the k=4 predicted tiles — the budget
#: genuinely binds (the scheduler defers the rest every round).
PUSH_BUDGET_BYTES = 640 * 1024

#: Momentum LOO latency average at size=256/users=4, k=5 — pinned when
#: the figure suite first went green, must survive the push subsystem.
MOMENTUM_AVG_PIN = 0.22686750000000075


@pytest.fixture(scope="module")
def world() -> MODISDataset:
    # 256px world, 32px tiles -> 8 tiles per dim at the deepest level:
    # the minimum the convergent workload accepts.
    return MODISDataset.build(size=256, tile_size=32, days=1, seed=7)


def engine_factory(pyramid):
    def factory() -> PredictionEngine:
        model = MomentumRecommender()
        return PredictionEngine(
            pyramid.grid, {model.name: model}, SingleModelStrategy(model.name)
        )

    return factory


def serving_config(push: bool) -> ServiceConfig:
    return ServiceConfig(
        prefetch=PrefetchPolicy(
            k=K,
            push="on" if push else "off",
            push_budget_bytes=PUSH_BUDGET_BYTES,
        ),
        # Deliberately starved: one recent slot plus a k-tile prefetch
        # region shared by four users guarantees cross-session eviction
        # churn, the regime push is built for.
        cache=CacheConfig(recent_capacity=1, prefetch_capacity=K),
    )


def workload_walks(name: str, grid) -> list:
    if name == "convergent":
        return convergent_walks(grid, num_users=NUM_USERS, leg=3, dwell=2)
    if name == "flash_crowd":
        return flash_crowd_walks(
            grid, num_users=NUM_USERS, bursts=2, wander=4, dwell=2, seed=7
        )
    raise ValueError(name)


def replay_concurrent(world, walks, push: bool) -> LatencyRecorder:
    """Round-robin the walks across concurrent sessions on one wire.

    All sessions live on one transport and interleave step by step, so
    every user's requests contend for the same shared server cache (and,
    with push on, the same downstream budget) at every instant.
    """
    pyramid = world.pyramid
    recorder = LatencyRecorder()
    with ThreadedSocketServer(
        pyramid,
        serving_config(push),
        engine_factory=engine_factory(pyramid),
    ) as server:
        with SocketTransport(
            *server.address, pyramid=pyramid, push=push
        ) as transport:
            assert transport.push_enabled is push
            clients = [
                transport.connect(session_id=f"user-{i + 1}")
                for i in range(len(walks))
            ]
            cursors = [0] * len(walks)
            remaining = sum(len(walk) for walk in walks)
            while remaining:
                for index, walk in enumerate(walks):
                    if cursors[index] >= len(walk):
                        continue
                    move, key = walk[cursors[index]]
                    response = clients[index].handle_request(move, key)
                    recorder.record(response.latency_seconds, response.hit)
                    cursors[index] += 1
                    remaining -= 1
            for client in clients:
                client.close()
    return recorder


class TestPushBeatsPull:
    @pytest.mark.parametrize("workload", ("convergent", "flash_crowd"))
    def test_push_wins_hit_rate_without_hurting_p95(self, world, workload):
        walks = workload_walks(workload, world.pyramid.grid)
        assert len(walks) >= 4
        pull = replay_concurrent(world, walks, push=False)
        push = replay_concurrent(world, walks, push=True)
        assert push.count == pull.count
        print(
            f"\n{workload}: pull hit_rate={pull.hit_rate:.3f} "
            f"p95={pull.percentile(0.95) * 1000:.1f}ms | "
            f"push hit_rate={push.hit_rate:.3f} "
            f"p95={push.percentile(0.95) * 1000:.1f}ms"
        )
        assert push.hit_rate > pull.hit_rate
        assert push.percentile(0.95) <= pull.percentile(0.95)


class TestPushOffFigureNumerics:
    @pytest.fixture(scope="class")
    def context(self) -> ExperimentContext:
        return ExperimentContext.build(size=256, num_users=4)

    @pytest.mark.parametrize("frontend", REPLAY_FRONTENDS)
    def test_momentum_average_is_bit_identical(self, context, frontend):
        recorder = replay_model_latency(
            context,
            lambda train: context.momentum_engine(train),
            k=5,
            frontend=frontend,
        )
        assert recorder.average_seconds == MOMENTUM_AVG_PIN
