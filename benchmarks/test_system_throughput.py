"""Microbenchmarks of the system's hot paths.

Not a paper figure — these keep the substrate honest: tile fetches,
signature computation, engine predictions, and phase classification are
the operations the middleware performs between every pair of user
requests, so they must comfortably fit inside human think time.
"""

import pytest

from repro.experiments.runner import hybrid_factory
from repro.signatures.sift import extract_sift_descriptors
from repro.signatures.gradients import normalize_tile_values
from repro.tiles.key import TileKey

pytestmark = pytest.mark.bench


@pytest.fixture(scope="module")
def trained_hybrid(context):
    engine = hybrid_factory(context)(context.study.excluding_user(1))
    engine.observe(None, context.grid.root)
    engine.observe(
        context.grid.root.move_to(TileKey(1, 0, 0)), TileKey(1, 0, 0)
    )
    return engine


def test_tile_fetch_throughput(context, benchmark):
    """One uncharged tile fetch (pure substrate I/O)."""
    pyramid = context.pyramid
    key = TileKey(2, 1, 1)
    tile = benchmark(lambda: pyramid.fetch_tile(key, charge=False))
    assert tile.shape == (pyramid.tile_size, pyramid.tile_size)


def test_sift_extraction_throughput(context, benchmark):
    """SIFT descriptor extraction on one tile."""
    tile = context.pyramid.fetch_tile(TileKey(2, 1, 1), charge=False)
    image = normalize_tile_values(tile.attribute(context.attribute))
    descriptors = benchmark(lambda: extract_sift_descriptors(image))
    assert descriptors.shape[1] == 128


def test_engine_prediction_throughput(trained_hybrid, benchmark):
    """One full two-level prediction round at k=5."""

    def predict():
        trained_hybrid._round_cache.clear()
        trained_hybrid._round_phase = None
        return trained_hybrid.predict(5)

    result = benchmark(predict)
    assert len(result.tiles) == 5


def test_phase_classification_throughput(context, benchmark):
    """One SVM phase classification."""
    classifier = context.phase_classifier(context.study.excluding_user(1))
    phase = benchmark(lambda: classifier.predict(TileKey(3, 2, 2), None))
    assert phase is not None
