"""Figure 10a: the AB model (Markov3) vs Momentum and Hotspot, per phase.

Shapes to reproduce: AB matches the baselines in Foraging and
Sensemaking and clearly beats them in Navigation at every k.  The
dominance shape needs the calibrated task difficulty of the full study
scale (a tiny world lets memoryless baselines saturate), so downscaled
runs check the machinery and ranges only.
"""

from conftest import is_full_scale, print_report

from repro.experiments.accuracy import replay_engine
from repro.experiments.runner import run_figure10a

import pytest

pytestmark = pytest.mark.bench


def test_figure10a_ab_vs_existing(context, benchmark):
    tables = run_figure10a(context)
    print_report(*tables)

    by_phase = {t.title.split("— ")[-1]: t for t in tables}
    nav = by_phase["navigation"]
    series = {row[0]: [float(v) for v in row[1:]] for row in nav.rows}
    # Accuracies are accuracies, at any scale.
    for values in series.values():
        assert all(0.0 <= v <= 1.0 for v in values)
    if is_full_scale(context):
        # Navigation: markov3 beats both baselines at every k (paper's
        # headline for this figure).
        for i in range(len(series["markov3"])):
            assert series["markov3"][i] >= series["momentum"][i]
            assert series["markov3"][i] >= series["hotspot"][i]
        # And by a wide margin at k=5 (paper: up to +25%).
        assert series["markov3"][4] - series["momentum"][4] > 0.1

    # Unit of work: replaying one user through the trained AB model.
    engine = context.markov_engine(context.study.excluding_user(1), 3)
    benchmark.pedantic(
        lambda: replay_engine(engine, context.study.by_user(1), ks=(5,)),
        rounds=1,
        iterations=1,
    )
