"""Concurrency tests: coalescing, stale-job cancellation, shared-cache races.

These exercise the serving subsystem the way a real deployment does —
many threads hammering one cache manager and one scheduler — with
backend queries gated or slowed just enough to force the interleavings
the code must survive.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.cache.lru import LRUCache
from repro.cache.manager import CacheManager
from repro.cache.tile_cache import TileCache
from repro.core.allocation import SingleModelStrategy
from repro.core.engine import PredictionEngine
from repro.middleware.multiuser import MultiUserServer
from repro.middleware.scheduler import (
    CANCELLED,
    DONE,
    PrefetchScheduler,
)
from repro.middleware.server import ForeCacheServer
from repro.recommenders.momentum import MomentumRecommender
from repro.tiles.key import TileKey
from repro.tiles.tile import DataTile


def make_engine(grid) -> PredictionEngine:
    model = MomentumRecommender()
    return PredictionEngine(grid, {model.name: model}, SingleModelStrategy(model.name))


def run_threads(workers) -> list[BaseException]:
    """Run thunks on their own threads; return exceptions they raised."""
    errors: list[BaseException] = []
    lock = threading.Lock()

    def guard(fn):
        def body():
            try:
                fn()
            except BaseException as exc:  # noqa: BLE001 - surfaced to the test
                with lock:
                    errors.append(exc)

        return body

    threads = [threading.Thread(target=guard(fn)) for fn in workers]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30)
    assert not any(t.is_alive() for t in threads), "worker thread hung"
    return errors


class TestCoalescing:
    def test_concurrent_same_tile_misses_coalesce(self, small_dataset):
        manager = CacheManager(
            small_dataset.pyramid, TileCache(), backend_delay_seconds=0.05
        )
        calls: list[TileKey] = []
        original = manager._query_backend

        def counting(key):
            calls.append(key)
            return original(key)

        manager._query_backend = counting
        key = TileKey(3, 2, 2)
        barrier = threading.Barrier(8)
        outcomes = []
        outcome_lock = threading.Lock()

        def worker():
            barrier.wait()
            outcome = manager.fetch(key)
            with outcome_lock:
                outcomes.append(outcome)

        errors = run_threads([worker] * 8)
        assert not errors
        assert len(calls) == 1, "concurrent misses must trigger one DBMS query"
        assert len(outcomes) == 8
        assert all(o.tile.key == key for o in outcomes)
        assert sum(1 for o in outcomes if not o.coalesced) == 1
        assert manager.coalesced == 7
        assert manager.requests == 8
        assert manager.hits == 0

    def test_distinct_tiles_do_not_coalesce(self, small_dataset):
        manager = CacheManager(
            small_dataset.pyramid, TileCache(), backend_delay_seconds=0.02
        )
        calls: list[TileKey] = []
        original = manager._query_backend

        def counting(key):
            calls.append(key)
            return original(key)

        manager._query_backend = counting
        keys = [TileKey(3, x, 0) for x in range(4)]
        barrier = threading.Barrier(4)

        def worker(key):
            barrier.wait()
            manager.fetch(key)

        errors = run_threads([lambda k=k: worker(k) for k in keys])
        assert not errors
        assert sorted(calls) == sorted(keys)

    def test_prefetch_job_coalesces_with_request(self, small_dataset):
        """A request landing on a tile already being prefetched waits for
        that load instead of issuing a second query."""
        manager = CacheManager(small_dataset.pyramid, TileCache())
        key = TileKey(3, 1, 1)
        calls: list[TileKey] = []
        started = threading.Event()
        release = threading.Event()
        original = manager._query_backend

        def gated(query_key):
            calls.append(query_key)
            started.set()
            assert release.wait(10)
            return original(query_key)

        manager._query_backend = gated
        scheduler = PrefetchScheduler(manager, max_workers=1)
        try:
            scheduler.schedule([(key, "m")])
            assert started.wait(10)

            def requester():
                outcome = manager.fetch(key)
                assert outcome.coalesced

            thread = threading.Thread(target=requester)
            thread.start()
            release.set()
            thread.join(timeout=10)
            assert not thread.is_alive()
            assert scheduler.wait_idle(10)
            assert len(calls) == 1
        finally:
            release.set()
            scheduler.shutdown()


class TestStaleCancellation:
    def test_new_round_cancels_queued_jobs(self, small_dataset):
        manager = CacheManager(small_dataset.pyramid, TileCache())
        started = threading.Event()
        release = threading.Event()
        original = manager._query_backend

        def gated(key):
            started.set()
            assert release.wait(10)
            return original(key)

        manager._query_backend = gated
        scheduler = PrefetchScheduler(manager, max_workers=1)
        try:
            first = scheduler.schedule(
                [(TileKey(2, i, 0), "m") for i in range(4)], session_id=7
            )
            assert started.wait(10)  # worker is inside job 0's query
            second = scheduler.schedule([(TileKey(2, 0, 1), "m")], session_id=7)
            release.set()
            assert scheduler.wait_idle(10)
            # Job 0 was already past its staleness check; the rest of the
            # superseded round never touched the backend.
            assert [job.state for job in first] == [DONE] + [CANCELLED] * 3
            assert all(job.state == DONE for job in second)
            assert scheduler.jobs_cancelled == 3
            assert scheduler.jobs_completed == 2
        finally:
            release.set()
            scheduler.shutdown()

    def test_cancel_session_drops_queued_jobs(self, small_dataset):
        manager = CacheManager(small_dataset.pyramid, TileCache())
        started = threading.Event()
        release = threading.Event()
        original = manager._query_backend

        def gated(key):
            started.set()
            assert release.wait(10)
            return original(key)

        manager._query_backend = gated
        scheduler = PrefetchScheduler(manager, max_workers=1)
        try:
            jobs = scheduler.schedule(
                [(TileKey(2, i, 0), "m") for i in range(3)], session_id=1
            )
            assert started.wait(10)
            scheduler.cancel_session(1)
            release.set()
            assert scheduler.wait_idle(10)
            assert [job.state for job in jobs] == [DONE, CANCELLED, CANCELLED]
        finally:
            release.set()
            scheduler.shutdown()

    def test_sessions_cancel_independently(self, small_dataset):
        manager = CacheManager(small_dataset.pyramid, TileCache())
        scheduler = PrefetchScheduler(manager, max_workers=2)
        try:
            ours = scheduler.schedule([(TileKey(2, 0, 0), "m")], session_id="a")
            scheduler.cancel_session("b")  # someone else's session
            assert scheduler.wait_idle(10)
            assert ours[0].state == DONE
        finally:
            scheduler.shutdown()

    def test_schedule_after_shutdown_rejected(self, small_dataset):
        manager = CacheManager(small_dataset.pyramid, TileCache())
        scheduler = PrefetchScheduler(manager, max_workers=1)
        scheduler.shutdown()
        with pytest.raises(RuntimeError):
            scheduler.schedule([(TileKey(0, 0, 0), "m")])


class TestBackgroundServer:
    def test_background_mode_serves_correct_tiles(self, small_dataset):
        engine = make_engine(small_dataset.pyramid.grid)
        with ForeCacheServer(
            small_dataset.pyramid,
            engine,
            prefetch_k=5,
            prefetch_mode="background",
        ) as server:
            rng = random.Random(11)
            key = small_dataset.pyramid.grid.root
            response = server.handle_request(None, key)
            assert response.tile.key == key
            for _ in range(20):
                move, target = rng.choice(
                    small_dataset.pyramid.grid.available_moves(key)
                )
                response = server.handle_request(move, target)
                assert response.tile.key == target
                key = target
            assert server.drain(timeout=10)
            assert server.recorder.count == 21
            scheduler = server.scheduler
            assert scheduler.jobs_submitted == (
                scheduler.jobs_completed
                + scheduler.jobs_cancelled
                + scheduler.jobs_failed
            )
            assert scheduler.jobs_failed == 0

    def test_background_prefetch_produces_hits(self, small_dataset):
        """Once drained, the prefetched tiles serve the next request from
        cache, same as the synchronous path."""
        engine = make_engine(small_dataset.pyramid.grid)
        with ForeCacheServer(
            small_dataset.pyramid,
            engine,
            prefetch_k=5,
            prefetch_mode="background",
        ) as server:
            first = server.handle_request(None, TileKey(2, 1, 1))
            assert server.drain(timeout=10)
            target = first.prefetched[0]
            move = TileKey(2, 1, 1).move_to(target)
            response = server.handle_request(move, target)
            assert response.hit

    def test_sync_mode_is_default_and_unscheduled(self, small_dataset):
        engine = make_engine(small_dataset.pyramid.grid)
        server = ForeCacheServer(small_dataset.pyramid, engine)
        assert server.prefetch_mode == "sync"
        assert server.scheduler is None

    def test_rejects_unknown_mode(self, small_dataset):
        engine = make_engine(small_dataset.pyramid.grid)
        with pytest.raises(ValueError):
            ForeCacheServer(
                small_dataset.pyramid, engine, prefetch_mode="eager"
            )

    def test_servers_sharing_a_scheduler_get_distinct_sessions(
        self, small_dataset
    ):
        """Two servers on one scheduler must not cancel each other's
        prefetch rounds via a colliding default session id."""
        manager = CacheManager(small_dataset.pyramid, TileCache())
        scheduler = PrefetchScheduler(manager, max_workers=2)
        try:
            servers = [
                ForeCacheServer(
                    small_dataset.pyramid,
                    make_engine(small_dataset.pyramid.grid),
                    cache_manager=manager,
                    prefetch_mode="background",
                    scheduler=scheduler,
                )
                for _ in range(2)
            ]
            assert servers[0].session_id != servers[1].session_id
            for server in servers:
                server.handle_request(None, small_dataset.pyramid.grid.root)
            assert scheduler.wait_idle(10)
            # Neither server's round was superseded by the other's.
            assert scheduler.jobs_cancelled == 0
        finally:
            scheduler.shutdown()


class TestMultiUserStress:
    @pytest.mark.parametrize("mode", ["sync", "background"])
    def test_shared_cache_race_free_under_load(self, small_dataset, mode):
        """Four user sessions on four threads share one cache and one
        scheduler; every response must carry the tile its user asked for
        and the shared counters must reconcile."""
        pyramid = small_dataset.pyramid
        steps = 25
        with MultiUserServer(
            pyramid,
            prefetch_k=8,
            recent_capacity=16,
            prefetch_mode=mode,
            prefetch_workers=3,
        ) as server:
            user_ids = [1, 2, 3, 4]
            for user_id in user_ids:
                server.register_user(user_id, make_engine(pyramid.grid))

            def drive(user_id):
                rng = random.Random(100 + user_id)
                key = pyramid.grid.root
                response = server.handle_request(user_id, None, key)
                assert response.tile.key == key
                for _ in range(steps):
                    move, target = rng.choice(pyramid.grid.available_moves(key))
                    response = server.handle_request(user_id, move, target)
                    assert response.tile.key == target
                    assert response.user_id == user_id
                    key = target

            errors = run_threads([lambda u=u: drive(u) for u in user_ids])
            assert errors == []
            assert server.drain(timeout=15)

            total = len(user_ids) * (steps + 1)
            manager = server.cache_manager
            assert manager.requests == total
            assert 0 <= manager.hits <= total
            assert sum(server.recorder(u).count for u in user_ids) == total
            if mode == "background":
                scheduler = server.scheduler
                assert scheduler.jobs_failed == 0
                assert scheduler.jobs_submitted == (
                    scheduler.jobs_completed + scheduler.jobs_cancelled
                )

    def test_one_users_fetch_warms_the_cache_for_another(self, small_dataset):
        pyramid = small_dataset.pyramid
        with MultiUserServer(
            pyramid, prefetch_k=4, prefetch_mode="background"
        ) as server:
            server.register_user(1, make_engine(pyramid.grid))
            server.register_user(2, make_engine(pyramid.grid))
            key = TileKey(2, 1, 1)
            first = server.handle_request(1, None, key)
            assert not first.hit
            second = server.handle_request(2, None, key)
            assert second.hit


class TestThreadSafeCaches:
    def test_lru_bounded_under_concurrent_writes(self):
        cache: LRUCache[int, int] = LRUCache(8)

        def writer(seed):
            rng = random.Random(seed)
            for _ in range(500):
                n = rng.randrange(64)
                cache.put(n, n)
                cache.get(rng.randrange(64))

        errors = run_threads([lambda s=s: writer(s) for s in range(6)])
        assert errors == []
        assert len(cache) <= 8
        for key in cache.keys():
            assert cache.peek(key) == key

    def test_admit_prefetched_evicts_oldest(self):
        import numpy as np

        def tile(key):
            return DataTile(key=key, attributes={"v": np.zeros((2, 2))})

        cache = TileCache(prefetch_capacity=2)
        a, b, c = (TileKey(2, i, 0) for i in range(3))
        assert cache.admit_prefetched(tile(a), "m") is None
        assert cache.admit_prefetched(tile(b), "m") is None
        assert cache.admit_prefetched(tile(c), "m") == a
        assert cache.lookup(a) is None
        assert cache.lookup(b) is not None
        assert cache.attribution(c) == "m"

    def test_tile_cache_concurrent_mixed_traffic(self):
        import numpy as np

        def tile(key):
            return DataTile(key=key, attributes={"v": np.zeros((2, 2))})

        cache = TileCache(recent_capacity=8, prefetch_capacity=4)
        keys = [TileKey(3, x, y) for x in range(4) for y in range(4)]

        def churn(seed):
            rng = random.Random(seed)
            for _ in range(300):
                key = rng.choice(keys)
                action = rng.randrange(3)
                if action == 0:
                    cache.record_request(tile(key))
                elif action == 1:
                    cache.admit_prefetched(tile(key), f"m{seed}")
                else:
                    found = cache.lookup(key)
                    assert found is None or found.key == key

        errors = run_threads([lambda s=s: churn(s) for s in range(6)])
        assert errors == []
        assert len(cache.prefetched_keys) <= 4

    def test_sharded_recent_lru_hammer(self):
        """get/put/evict churn across every segment of the sharded LRU:
        occupancy stays bounded, values stay consistent, counters add up."""
        from repro.cache.lru import ShardedLRUCache

        cache: ShardedLRUCache[int, int] = ShardedLRUCache(16, shards=8)
        gets_per_worker = 400

        def churn(seed):
            rng = random.Random(seed)
            for _ in range(gets_per_worker):
                n = rng.randrange(96)
                cache.put(n, n)
                found = cache.get(rng.randrange(96))
                assert found is None or 0 <= found < 96
                assert len(cache) <= 16

        workers = 6
        errors = run_threads([lambda s=s: churn(s) for s in range(workers)])
        assert errors == []
        assert len(cache) <= 16
        for key in cache.keys():
            assert cache.peek(key) == key
        # Every get was counted exactly once, hit or miss.
        assert cache.hits + cache.misses == workers * gets_per_worker

    def test_sharded_tile_cache_promote_and_evict_hammer(self):
        """Request/promote/admit/lookup churn over a fully sharded
        TileCache (both regions striped): hits promote out of the
        prefetch region, full shards evict, nothing tears."""
        import numpy as np

        def tile(key):
            return DataTile(key=key, attributes={"v": np.zeros((2, 2))})

        cache = TileCache(recent_capacity=12, prefetch_capacity=8, shards=8)
        keys = [TileKey(3, x, y) for x in range(6) for y in range(6)]

        def churn(seed):
            rng = random.Random(seed)
            for _ in range(400):
                key = rng.choice(keys)
                action = rng.randrange(4)
                if action == 0:
                    # A user request: promotes a prefetched tile into
                    # the recent region and frees its slot.
                    cache.record_request(tile(key))
                    assert key in cache
                elif action == 1:
                    cache.admit_prefetched(tile(key), f"m{seed}")
                elif action == 2:
                    found = cache.lookup(key)
                    assert found is None or found.key == key
                else:
                    usage = cache.model_usage()
                    assert all(count >= 0 for count in usage.values())

        errors = run_threads([lambda s=s: churn(s) for s in range(8)])
        assert errors == []
        assert len(cache.prefetched_keys) <= 8
        assert len(cache.recent_keys) <= 12
        # A final request per key promotes: afterwards nothing the user
        # requested is still holding a prefetch slot.
        for key in keys[:6]:
            cache.record_request(tile(key))
            assert key not in cache.prefetched_keys
            assert key in cache.recent_keys


class TestPriorityAdmission:
    """Rank-aware fair admission: the scheduler's heap is ordered by
    (rank, session deficit, generation), stale jobs are dropped at pop
    time, and ``admission="fifo"`` restores plain arrival order."""

    @staticmethod
    def _manager(small_dataset, shards: int = 1) -> CacheManager:
        return CacheManager(
            small_dataset.pyramid,
            TileCache(recent_capacity=32, prefetch_capacity=9, shards=shards),
            shards=shards,
        )

    @staticmethod
    def _gate(manager, gate_keys):
        """Backend queries for ``gate_keys`` block until released."""
        started = threading.Semaphore(0)
        release = threading.Event()
        original = manager._query_backend

        def gated(key):
            if key in gate_keys:
                started.release()
                assert release.wait(10)
            return original(key)

        manager._query_backend = gated
        return started, release

    def test_rank_order_beats_arrival_order(self, small_dataset):
        """With the queue backed up, every session's rank-0 tile runs
        before any session's rank-1 tile, regardless of arrival."""
        manager = self._manager(small_dataset)
        gate_key = TileKey(3, 7, 7)
        started, release = self._gate(manager, {gate_key})
        scheduler = PrefetchScheduler(manager, max_workers=1)
        try:
            scheduler.schedule([(gate_key, "m")], session_id="gate")
            assert started.acquire(timeout=10)
            rounds = [
                scheduler.schedule(
                    [(TileKey(3, x, y), "m") for x in range(3)],
                    session_id=f"s{y}",
                )
                for y in range(3)
            ]
            release.set()
            assert scheduler.wait_idle(10)
            jobs = [job for round_ in rounds for job in round_]
            assert all(job.state == DONE for job in jobs)
            by_completion = sorted(jobs, key=lambda j: j.finish_order)
            assert [j.rank for j in by_completion] == [0, 0, 0, 1, 1, 1, 2, 2, 2]
        finally:
            release.set()
            scheduler.shutdown()

    def test_fifo_admission_preserves_arrival_order(self, small_dataset):
        """The baseline discipline drains whole rounds in arrival order."""
        manager = self._manager(small_dataset)
        gate_key = TileKey(3, 7, 7)
        started, release = self._gate(manager, {gate_key})
        scheduler = PrefetchScheduler(manager, max_workers=1, admission="fifo")
        try:
            scheduler.schedule([(gate_key, "m")], session_id="gate")
            assert started.acquire(timeout=10)
            rounds = [
                scheduler.schedule(
                    [(TileKey(3, x, y), "m") for x in range(3)],
                    session_id=f"s{y}",
                )
                for y in range(3)
            ]
            release.set()
            assert scheduler.wait_idle(10)
            jobs = [job for round_ in rounds for job in round_]
            by_completion = sorted(jobs, key=lambda j: j.finish_order)
            assert [j.rank for j in by_completion] == [0, 1, 2, 0, 1, 2, 0, 1, 2]
        finally:
            release.set()
            scheduler.shutdown()

    def test_concurrent_schedules_run_only_newest_generation(self, small_dataset):
        """Racing schedule() calls on one session: exactly the highest
        generation's jobs run; every superseded job is cancelled, none
        is left pending."""
        manager = self._manager(small_dataset)
        gate_key = TileKey(3, 7, 7)
        started, release = self._gate(manager, {gate_key})
        scheduler = PrefetchScheduler(manager, max_workers=1)
        rounds: list[list] = []
        rounds_lock = threading.Lock()
        try:
            scheduler.schedule([(gate_key, "m")], session_id="gate")
            assert started.acquire(timeout=10)
            barrier = threading.Barrier(6)

            def submit(i):
                barrier.wait()
                jobs = scheduler.schedule(
                    [(TileKey(4, i, y), "m") for y in range(3)],
                    session_id="s",
                )
                with rounds_lock:
                    rounds.append(jobs)

            errors = run_threads([lambda i=i: submit(i) for i in range(6)])
            assert errors == []
            release.set()
            assert scheduler.wait_idle(10)
            jobs = [job for round_ in rounds for job in round_]
            assert all(job.finished for job in jobs)
            newest = max(job.generation for job in jobs)
            for job in jobs:
                expected = DONE if job.generation == newest else CANCELLED
                assert job.state == expected
        finally:
            release.set()
            scheduler.shutdown()

    def test_deficit_round_robin_prefers_less_served_session(self, small_dataset):
        """At equal rank, the session the pool has served least goes
        first — even when the busier session's round arrived earlier
        and carries a newer generation."""
        manager = self._manager(small_dataset)
        gate1, gate2 = TileKey(3, 7, 7), TileKey(3, 7, 6)
        original = manager._query_backend
        started1, started2 = threading.Event(), threading.Event()
        release1, release2 = threading.Event(), threading.Event()

        def gated(key):
            if key == gate1:
                started1.set()
                assert release1.wait(10)
            elif key == gate2:
                started2.set()
                assert release2.wait(10)
            return original(key)

        manager._query_backend = gated
        scheduler = PrefetchScheduler(manager, max_workers=1)
        try:
            # Phase 1: session "a" has a full round served (deficit 4).
            scheduler.schedule([(gate1, "m")], session_id="gate")
            assert started1.wait(10)
            scheduler.schedule(
                [(TileKey(4, x, 0), "m") for x in range(4)], session_id="a"
            )
            release1.set()
            assert scheduler.wait_idle(10)
            # Phase 2: "a" again (arrives first) vs. newcomer "b".
            scheduler.schedule([(gate2, "m")], session_id="gate")
            assert started2.wait(10)
            a_jobs = scheduler.schedule(
                [(TileKey(4, x, 1), "m") for x in range(3)], session_id="a"
            )
            b_jobs = scheduler.schedule(
                [(TileKey(4, x, 2), "m") for x in range(3)], session_id="b"
            )
            release2.set()
            assert scheduler.wait_idle(10)
            for rank in range(3):
                assert b_jobs[rank].finish_order < a_jobs[rank].finish_order
        finally:
            release1.set()
            release2.set()
            scheduler.shutdown()

    def test_cancel_session_mid_round_never_wedges_wait_idle(self, small_dataset):
        """Cancelling a session whose round is queued behind busy
        workers drains cleanly: the jobs are dropped at pop time and
        wait_idle still observes the drain."""
        manager = self._manager(small_dataset)
        gates = {TileKey(3, 7, 7), TileKey(3, 7, 6)}
        started, release = self._gate(manager, gates)
        scheduler = PrefetchScheduler(manager, max_workers=2)
        try:
            scheduler.schedule([(key, "m") for key in gates], session_id="x")
            assert started.acquire(timeout=10)
            assert started.acquire(timeout=10)
            jobs = scheduler.schedule(
                [(TileKey(4, x, 3), "m") for x in range(10)], session_id="y"
            )
            scheduler.cancel_session("y")
            release.set()
            assert scheduler.wait_idle(10)
            assert all(job.state == CANCELLED for job in jobs)
            assert scheduler.jobs_cancelled == 10
        finally:
            release.set()
            scheduler.shutdown()

    def test_shutdown_cancels_queued_jobs_and_reconciles(self, small_dataset):
        """shutdown() must not strand queued jobs PENDING: they are
        cancelled, counted, and reconciled so wait_idle is truthful."""
        manager = self._manager(small_dataset)
        gate_key = TileKey(3, 7, 7)
        started, release = self._gate(manager, {gate_key})
        scheduler = PrefetchScheduler(manager, max_workers=1)
        try:
            gate_jobs = scheduler.schedule([(gate_key, "m")], session_id="g")
            assert started.acquire(timeout=10)
            queued = scheduler.schedule(
                [(TileKey(4, x, 4), "m") for x in range(3)], session_id="s"
            )
            scheduler.shutdown(wait=False)
            assert all(job.state == CANCELLED for job in queued)
            assert all(job.finished for job in queued)
            assert scheduler.jobs_cancelled == 3
            release.set()
            assert scheduler.wait_idle(10)
            assert gate_jobs[0].state == DONE
            with pytest.raises(RuntimeError):
                scheduler.schedule([(TileKey(0, 0, 0), "m")])
        finally:
            release.set()
            scheduler.shutdown()


class TestShardedCacheManager:
    def test_sharded_manager_still_coalesces_same_key(self, small_dataset):
        """Striping the in-flight table must not break coalescing: one
        key maps to one stripe, so concurrent misses still share one
        DBMS query."""
        manager = CacheManager(
            small_dataset.pyramid,
            TileCache(shards=4),
            backend_delay_seconds=0.05,
            shards=8,
        )
        calls: list[TileKey] = []
        original = manager._query_backend

        def counting(key):
            calls.append(key)
            return original(key)

        manager._query_backend = counting
        key = TileKey(3, 2, 2)
        barrier = threading.Barrier(8)
        outcomes = []
        outcome_lock = threading.Lock()

        def worker():
            barrier.wait()
            outcome = manager.fetch(key)
            with outcome_lock:
                outcomes.append(outcome)

        errors = run_threads([worker] * 8)
        assert not errors
        assert len(calls) == 1, "concurrent misses must trigger one DBMS query"
        assert all(o.tile.key == key for o in outcomes)
        assert sum(1 for o in outcomes if not o.coalesced) == 1
        assert manager.coalesced == 7
        assert manager.requests == 8

    def test_sharded_manager_distinct_keys_query_once_each(self, small_dataset):
        manager = CacheManager(
            small_dataset.pyramid,
            TileCache(shards=4),
            backend_delay_seconds=0.02,
            shards=4,
        )
        calls: list[TileKey] = []
        original = manager._query_backend

        def counting(key):
            calls.append(key)
            return original(key)

        manager._query_backend = counting
        keys = [TileKey(3, x, y) for x in range(4) for y in range(2)]
        barrier = threading.Barrier(len(keys))

        def worker(key):
            barrier.wait()
            manager.fetch(key)

        errors = run_threads([lambda k=k: worker(k) for k in keys])
        assert not errors
        assert sorted(calls) == sorted(keys)

    def test_sharded_tile_cache_concurrent_mixed_traffic(self):
        import numpy as np

        def tile(key):
            return DataTile(key=key, attributes={"v": np.zeros((2, 2))})

        cache = TileCache(recent_capacity=8, prefetch_capacity=8, shards=4)
        keys = [TileKey(3, x, y) for x in range(4) for y in range(4)]

        def churn(seed):
            rng = random.Random(seed)
            for _ in range(300):
                key = rng.choice(keys)
                action = rng.randrange(3)
                if action == 0:
                    cache.record_request(tile(key))
                elif action == 1:
                    cache.admit_prefetched(tile(key), f"m{seed}")
                else:
                    found = cache.lookup(key)
                    assert found is None or found.key == key

        errors = run_threads([lambda s=s: churn(s) for s in range(6)])
        assert errors == []
        assert len(cache.prefetched_keys) <= 8
