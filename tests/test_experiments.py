"""Unit tests for the evaluation harness."""

import pytest

from repro.core.allocation import SingleModelStrategy
from repro.core.engine import PredictionEngine
from repro.experiments.accuracy import AccuracyResult, replay_engine
from repro.experiments.crossval import (
    classifier_cv_accuracy,
    evaluate_engine_cv,
    leave_one_user_out,
)
from repro.experiments.latency import (
    LatencyPoint,
    figure13_violations,
    improvement_percent,
    linear_fit,
    replay_latency,
)
from repro.experiments.report import Comparison, Table
from repro.middleware.server import ForeCacheServer
from repro.phases.model import AnalysisPhase
from repro.recommenders.momentum import MomentumRecommender

P = AnalysisPhase


class TestAccuracyResult:
    def test_record_and_query(self):
        result = AccuracyResult()
        result.record(P.FORAGING, 1, True)
        result.record(P.FORAGING, 1, False)
        result.record(P.NAVIGATION, 1, True)
        assert result.accuracy(1, P.FORAGING) == pytest.approx(0.5)
        assert result.accuracy(1) == pytest.approx(2 / 3)

    def test_empty_bucket_is_zero(self):
        assert AccuracyResult().accuracy(5) == 0.0

    def test_merge(self):
        a, b = AccuracyResult(), AccuracyResult()
        a.record(P.FORAGING, 1, True)
        b.record(P.FORAGING, 1, False)
        a.merge(b)
        assert a.accuracy(1) == pytest.approx(0.5)
        assert a.sample_count(1) == 2

    def test_ks_and_phases(self):
        result = AccuracyResult()
        result.record(P.SENSEMAKING, 2, True)
        result.record(P.FORAGING, 5, False)
        assert result.ks() == [2, 5]
        assert result.phases() == [P.FORAGING, P.SENSEMAKING]

    def test_as_series(self):
        result = AccuracyResult()
        result.record(P.FORAGING, 1, True)
        result.record(P.FORAGING, 2, False)
        assert result.as_series() == {1: 1.0, 2: 0.0}


class TestReplayEngine:
    def _engine(self, small_dataset) -> PredictionEngine:
        model = MomentumRecommender()
        return PredictionEngine(
            small_dataset.pyramid.grid,
            {model.name: model},
            SingleModelStrategy(model.name),
        )

    def test_counts_predictions(self, small_dataset, small_study):
        engine = self._engine(small_dataset)
        trace = small_study.traces[0]
        result = replay_engine(engine, [trace], ks=(1,))
        # One prediction per request except the last.
        assert result.sample_count(1) == len(trace) - 1

    def test_k9_is_perfect(self, small_dataset, small_study):
        """At k=9 the prefetch covers every possible move (Section 5.2.2)."""
        engine = self._engine(small_dataset)
        result = replay_engine(engine, small_study.traces[:3], ks=(9,))
        assert result.accuracy(9) == pytest.approx(1.0)

    def test_accuracy_monotone_in_k(self, small_dataset, small_study):
        engine = self._engine(small_dataset)
        result = replay_engine(engine, small_study.traces[:3], ks=(1, 3, 5, 8))
        series = [result.accuracy(k) for k in (1, 3, 5, 8)]
        assert series == sorted(series)


class TestCrossValidation:
    def test_folds_partition_users(self, small_study):
        folds = list(leave_one_user_out(small_study))
        assert len(folds) == len(small_study.user_ids)
        for user_id, train, test in folds:
            assert all(t.user_id != user_id for t in train)
            assert all(t.user_id == user_id for t in test)
            assert len(train) + len(test) == len(small_study)

    def test_evaluate_engine_cv(self, small_dataset, small_study):
        def factory(train):
            model = MomentumRecommender()
            return PredictionEngine(
                small_dataset.pyramid.grid,
                {model.name: model},
                SingleModelStrategy(model.name),
            )

        result = evaluate_engine_cv(small_study, factory, ks=(1, 9))
        assert result.accuracy(9) == pytest.approx(1.0)
        total = small_study.total_requests() - len(small_study)
        assert result.sample_count(1) == total

    def test_classifier_cv(self, small_study):
        overall, per_user = classifier_cv_accuracy(small_study)
        assert set(per_user) == set(small_study.user_ids)
        assert 0.0 <= overall <= 1.0
        # Must beat random guessing over 3 phases.
        assert overall > 1 / 3


class TestLatencyHarness:
    def test_replay_latency(self, small_dataset, small_study):
        def server_factory():
            model = MomentumRecommender()
            engine = PredictionEngine(
                small_dataset.pyramid.grid,
                {model.name: model},
                SingleModelStrategy(model.name),
            )
            return ForeCacheServer(small_dataset.pyramid, engine, prefetch_k=5)

        recorder = replay_latency(server_factory, small_study.traces[:2])
        assert recorder.count == sum(len(t) for t in small_study.traces[:2])
        assert 0.0 < recorder.average_seconds < 1.0

    def test_linear_fit_recovers_line(self):
        points = [
            LatencyPoint("m", k, acc, (0.984 - 0.9645 * acc))
            for k, acc in enumerate([0.1, 0.3, 0.5, 0.7, 0.9], start=1)
        ]
        slope, intercept, r2 = linear_fit(points)
        assert intercept == pytest.approx(984.0, abs=1e-6)
        assert slope == pytest.approx(-964.5, abs=1e-6)
        assert r2 == pytest.approx(1.0)

    def test_linear_fit_needs_points(self):
        with pytest.raises(ValueError):
            linear_fit([LatencyPoint("m", 1, 0.5, 0.5)] * 2)

    def test_improvement_percent(self):
        assert improvement_percent(984.0, 185.0) == pytest.approx(431.9, abs=0.1)
        with pytest.raises(ValueError):
            improvement_percent(100.0, 0.0)


class TestReport:
    def test_table_rendering(self):
        table = Table(["a", "b"], title="T")
        table.add_row(1, 0.12345)
        text = str(table)
        assert "T" in text
        assert "0.123" in text

    def test_table_row_length_checked(self):
        table = Table(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_table_markdown(self):
        table = Table(["a"], title="T")
        table.add_row("x")
        md = table.to_markdown()
        assert "| a |" in md
        assert "| x |" in md

    def test_comparison(self):
        comparison = Comparison("exp")
        comparison.add("metric", 0.82, 0.815)
        text = str(comparison)
        assert "0.820" in text and "0.815" in text


class TestFigure13Shape:
    """Pins the downscale behavior of the Figure 13 assertions.

    The curves in ``DOWNSCALED`` are the measured REPRO_SIZE=512 /
    REPRO_USERS=6 run that used to fail the bench tier: in the tiny
    world the single-model baselines saturate at high k (momentum with
    k=8 covers nearly every legal move) while the hybrid still splits
    its budget — so hybrid dominance is a full-scale-only claim beyond
    the headline k.
    """

    DOWNSCALED = {
        "momentum": {1: 761.866, 3: 393.560, 5: 246.238, 7: 64.387, 8: 42.519},
        "hotspot": {1: 742.300, 3: 317.597, 5: 193.294, 7: 64.387, 8: 42.519},
        "hybrid": {1: 599.581, 3: 281.918, 5: 142.652, 7: 95.463, 8: 64.387},
    }

    FULL_SCALE = {
        "momentum": {1: 761.0, 3: 393.0, 5: 349.0, 7: 250.0, 8: 220.0},
        "hotspot": {1: 742.0, 3: 318.0, 5: 360.0, 7: 260.0, 8: 230.0},
        "hybrid": {1: 599.0, 3: 282.0, 5: 185.0, 7: 170.0, 8: 160.0},
    }

    def test_downscaled_curves_pass_downscaled_checks(self):
        assert figure13_violations(self.DOWNSCALED, full_scale=False) == []

    def test_downscaled_curves_fail_full_scale_checks(self):
        violations = figure13_violations(self.DOWNSCALED, full_scale=True)
        assert violations  # the k=7/k=8 tail crossing is detected
        assert any("k=7" in v for v in violations)

    def test_full_scale_curves_pass_everywhere(self):
        assert figure13_violations(self.FULL_SCALE, full_scale=True) == []
        assert figure13_violations(self.FULL_SCALE, full_scale=False) == []

    def test_headline_crossing_fails_even_downscaled(self):
        crossed = {
            model: dict(series)
            for model, series in self.DOWNSCALED.items()
        }
        crossed["hybrid"][5] = crossed["momentum"][5] + 1.0
        violations = figure13_violations(crossed, full_scale=False)
        assert any("k=5" in v for v in violations)

    def test_interactivity_bar_is_always_checked(self):
        sluggish = {
            model: dict(series)
            for model, series in self.FULL_SCALE.items()
        }
        for model in sluggish:
            sluggish[model][5] = 600.0
        for full_scale in (True, False):
            violations = figure13_violations(sluggish, full_scale=full_scale)
            assert any("interactivity" in v for v in violations)

    def test_missing_headline_k_is_an_error(self):
        with pytest.raises(ValueError):
            figure13_violations(
                {"hybrid": {1: 1.0}, "momentum": {1: 1.0}, "hotspot": {1: 1.0}},
                full_scale=False,
            )
