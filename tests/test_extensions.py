"""Tests for the Section 6 extensions: multi-user serving and rendering."""

import numpy as np
import pytest

from repro.core.allocation import SingleModelStrategy
from repro.core.engine import PredictionEngine
from repro.middleware.latency import HIT_SECONDS
from repro.middleware.multiuser import MultiUserServer
from repro.recommenders.momentum import MomentumRecommender
from repro.tiles.key import TileKey
from repro.tiles.render import render_ascii, render_ppm, snow_colormap
from repro.tiles.tile import DataTile


def momentum_engine(grid) -> PredictionEngine:
    model = MomentumRecommender()
    return PredictionEngine(grid, {model.name: model}, SingleModelStrategy(model.name))


class TestMultiUserServer:
    @pytest.fixture
    def server(self, small_dataset):
        server = MultiUserServer(small_dataset.pyramid, prefetch_k=8)
        grid = small_dataset.pyramid.grid
        server.register_user(1, momentum_engine(grid))
        server.register_user(2, momentum_engine(grid))
        return server

    def test_registration(self, server, small_dataset):
        assert server.user_ids == [1, 2]
        with pytest.raises(ValueError):
            server.register_user(1, momentum_engine(small_dataset.pyramid.grid))

    def test_unknown_user_rejected(self, server):
        with pytest.raises(KeyError):
            server.handle_request(9, None, TileKey(0, 0, 0))

    def test_users_share_the_cache(self, server):
        """A tile user 1 paid for is a hit for user 2 — Section 6.2's
        cross-user sharing."""
        key = TileKey(2, 1, 1)
        first = server.handle_request(1, None, key)
        assert not first.hit
        second = server.handle_request(2, None, key)
        assert second.hit
        assert second.latency_seconds == pytest.approx(HIT_SECONDS)

    def test_prefetch_budget_shared_fairly(self, server):
        server.handle_request(1, None, TileKey(2, 1, 1))
        server.handle_request(2, None, TileKey(2, 2, 2))
        usage = server.cache_manager.cache.model_usage()
        # Both users' model predictions occupy the shared region.
        assert sum(usage.values()) <= 8
        prefetched = server.cache_manager.cache.prefetched_keys
        near_1 = [k for k in prefetched if k.manhattan_distance(TileKey(2, 1, 1)) <= 3]
        near_2 = [k for k in prefetched if k.manhattan_distance(TileKey(2, 2, 2)) <= 3]
        assert near_1 and near_2

    def test_per_user_recorders(self, server):
        server.handle_request(1, None, TileKey(0, 0, 0))
        assert server.recorder(1).count == 1
        assert server.recorder(2).count == 0

    def test_remove_user(self, server):
        server.remove_user(2)
        assert server.user_ids == [1]
        with pytest.raises(KeyError):
            server.remove_user(2)

    def test_single_user_gets_full_budget(self, small_dataset):
        server = MultiUserServer(small_dataset.pyramid, prefetch_k=6)
        server.register_user(1, momentum_engine(small_dataset.pyramid.grid))
        server.handle_request(1, None, TileKey(2, 1, 1))
        assert len(server.cache_manager.cache.prefetched_keys) == 6


class TestRendering:
    def _tile(self) -> DataTile:
        gradient = np.linspace(-1.0, 1.0, 32 * 32).reshape(32, 32)
        return DataTile(key=TileKey(0, 0, 0), attributes={"v": gradient})

    def test_ascii_dimensions(self):
        art = render_ascii(self._tile(), "v", width=16)
        lines = art.splitlines()
        assert len(lines) == 16
        assert all(len(line) == 32 for line in lines)  # 2 chars per cell

    def test_ascii_brightness_follows_values(self):
        art = render_ascii(self._tile(), "v", width=8)
        lines = art.splitlines()
        # Bottom rows hold the largest values -> brightest glyphs.
        assert lines[0][0] == " "
        assert lines[-1][-1] == "@"

    def test_ascii_rejects_tiny_width(self):
        with pytest.raises(ValueError):
            render_ascii(self._tile(), "v", width=1)

    def test_colormap_bounds(self):
        rgb = snow_colormap(np.asarray([0.0, 0.5, 1.0]))
        assert rgb.dtype == np.uint8
        assert rgb.shape == (3, 3)
        # Low values are blue-ish, high values near-white.
        assert rgb[0][2] > rgb[0][0]
        assert rgb[2].min() > 180

    def test_ppm_roundtrip(self, tmp_path):
        path = render_ppm(self._tile(), "v", tmp_path / "tile.ppm", scale=2)
        data = path.read_bytes()
        assert data.startswith(b"P6\n64 64\n255\n")
        # Header + 64*64 RGB pixels.
        assert len(data) == len(b"P6\n64 64\n255\n") + 64 * 64 * 3

    def test_ppm_rejects_bad_scale(self, tmp_path):
        with pytest.raises(ValueError):
            render_ppm(self._tile(), "v", tmp_path / "x.ppm", scale=0)

    def test_render_real_tile(self, small_dataset, tmp_path):
        tile = small_dataset.pyramid.fetch_tile(TileKey(0, 0, 0), charge=False)
        art = render_ascii(tile, "ndsi_avg")
        assert len(art.splitlines()) == 32
        render_ppm(tile, "ndsi_avg", tmp_path / "world.ppm")
        assert (tmp_path / "world.ppm").stat().st_size > 1000
