"""Unit tests for the recommendation models."""

import pytest

from repro.phases.model import AnalysisPhase
from repro.recommenders.base import PredictionContext
from repro.recommenders.hotspot import HotspotRecommender
from repro.recommenders.markov import MarkovRecommender
from repro.recommenders.momentum import (
    MomentumRecommender,
    OTHER_PROBABILITY,
    REPEAT_PROBABILITY,
)
from repro.recommenders.signature_based import SignatureBasedRecommender
from repro.tiles.key import TileKey
from repro.tiles.moves import Move
from repro.tiles.pyramid import TileGrid
from repro.users.session import Request, Trace

GRID = TileGrid(4)


def context_at(
    key: TileKey, moves: tuple[Move, ...] = (), roi: tuple[TileKey, ...] = ()
) -> PredictionContext:
    return PredictionContext(
        current=key,
        grid=GRID,
        candidates=tuple(GRID.candidates(key)),
        history_moves=moves,
        history_tiles=(key,),
        roi=roi,
    )


def trace_from_moves(moves: list[Move], start: TileKey, user=1, task=1) -> Trace:
    requests = [Request(0, start, None, AnalysisPhase.FORAGING)]
    current = start
    for i, move in enumerate(moves, start=1):
        current = GRID.apply(current, move)
        assert current is not None, f"illegal move {move} in test trace"
        requests.append(Request(i, current, move, AnalysisPhase.FORAGING))
    return Trace(user_id=user, task_id=task, requests=requests)


class TestMomentum:
    def test_distribution_sums_to_one(self):
        model = MomentumRecommender()
        dist = model.move_distribution(Move.PAN_LEFT)
        assert sum(dist.values()) == pytest.approx(1.0)
        assert dist[Move.PAN_LEFT] == REPEAT_PROBABILITY
        assert dist[Move.ZOOM_OUT] == OTHER_PROBABILITY

    def test_repeats_previous_move(self):
        model = MomentumRecommender()
        key = TileKey(2, 1, 1)
        ranked = model.predict(context_at(key, (Move.PAN_RIGHT,)))
        assert ranked[0] == TileKey(2, 2, 1)

    def test_no_history_uniform(self):
        model = MomentumRecommender()
        dist = model.move_distribution(None)
        assert len(set(dist.values())) == 1

    def test_illegal_repeat_skipped(self):
        model = MomentumRecommender()
        key = TileKey(2, 0, 1)  # left edge: PAN_LEFT illegal
        ranked = model.predict(context_at(key, (Move.PAN_LEFT,)))
        assert TileKey(2, 0, 1) not in ranked
        assert len(ranked) == 8  # 9 candidates minus the illegal one

    def test_prediction_subset_of_candidates(self):
        model = MomentumRecommender()
        ctx = context_at(TileKey(1, 0, 0), (Move.ZOOM_OUT,))
        assert set(model.predict(ctx)) <= set(ctx.candidates)


class TestMarkov:
    def test_requires_training(self):
        model = MarkovRecommender(order=3)
        with pytest.raises(RuntimeError):
            model.predict(context_at(TileKey(1, 0, 0)))

    def test_learns_repeated_pattern(self):
        moves = [Move.PAN_RIGHT, Move.PAN_RIGHT, Move.PAN_RIGHT]
        trace = trace_from_moves(moves, TileKey(2, 0, 0))
        model = MarkovRecommender(order=2)
        model.train([trace] * 5)
        dist = model.move_distribution((Move.PAN_RIGHT, Move.PAN_RIGHT))
        assert dist[Move.PAN_RIGHT] == max(dist.values())

    def test_learns_alternating_pattern(self):
        moves = [Move.PAN_RIGHT, Move.PAN_LEFT, Move.PAN_RIGHT, Move.PAN_LEFT]
        trace = trace_from_moves(moves, TileKey(2, 0, 0))
        model = MarkovRecommender(order=1)
        model.train([trace] * 5)
        dist = model.move_distribution((Move.PAN_RIGHT,))
        assert dist[Move.PAN_LEFT] > dist[Move.PAN_RIGHT]

    def test_distribution_normalized(self):
        trace = trace_from_moves(
            [Move.ZOOM_IN_NW, Move.ZOOM_IN_NW], TileKey(0, 0, 0)
        )
        model = MarkovRecommender(order=3)
        model.train([trace])
        dist = model.move_distribution((Move.PAN_LEFT, Move.PAN_UP, Move.ZOOM_OUT))
        assert sum(dist.values()) == pytest.approx(1.0)

    def test_predict_orders_by_probability(self):
        moves = [Move.ZOOM_IN_NW] * 3
        trace = trace_from_moves(moves, TileKey(0, 0, 0))
        model = MarkovRecommender(order=2)
        model.train([trace] * 3)
        ctx = context_at(TileKey(1, 0, 0), (Move.ZOOM_IN_NW, Move.ZOOM_IN_NW))
        ranked = model.predict(ctx)
        assert ranked[0] == TileKey(2, 0, 0)  # NW child

    def test_name_includes_order(self):
        assert MarkovRecommender(order=5).name == "markov5"


class TestHotspot:
    def test_untrained_behaves_like_momentum(self):
        hotspot = HotspotRecommender()
        momentum = MomentumRecommender()
        ctx = context_at(TileKey(2, 1, 1), (Move.PAN_DOWN,))
        assert hotspot.predict(ctx) == momentum.predict(ctx)

    def test_training_finds_popular_tiles(self):
        popular = TileKey(2, 2, 2)
        traces = [trace_from_moves([], popular) for _ in range(3)]
        traces.append(trace_from_moves([], TileKey(2, 0, 0)))
        model = HotspotRecommender(num_hotspots=1)
        model.train(traces)
        assert model.hotspots == (popular,)

    def test_pulls_toward_hotspot(self):
        hotspot_tile = TileKey(2, 3, 1)
        # Visits make (2,3,1) the hotspot.
        traces = [trace_from_moves([], hotspot_tile) for _ in range(5)]
        model = HotspotRecommender(num_hotspots=1, proximity=4)
        model.train(traces)
        # Standing two tiles west, with momentum pointing away.
        ctx = context_at(TileKey(2, 1, 1), (Move.PAN_LEFT,))
        ranked = model.predict(ctx)
        assert ranked[0] == TileKey(2, 2, 1)  # toward the hotspot

    def test_far_from_hotspots_defaults_to_momentum(self):
        far = TileKey(3, 7, 7)
        traces = [trace_from_moves([], TileKey(3, 0, 0)) for _ in range(3)]
        model = HotspotRecommender(num_hotspots=1, proximity=2)
        model.train(traces)
        momentum = MomentumRecommender()
        ctx = context_at(far, (Move.PAN_UP,))
        assert model.predict(ctx) == momentum.predict(ctx)

    def test_nearest_hotspot(self):
        model = HotspotRecommender(num_hotspots=2, proximity=10)
        model.train([
            trace_from_moves([], TileKey(2, 0, 0)),
            trace_from_moves([], TileKey(2, 3, 3)),
        ])
        assert model.nearest_hotspot(TileKey(2, 1, 0)) == TileKey(2, 0, 0)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            HotspotRecommender(num_hotspots=0)
        with pytest.raises(ValueError):
            HotspotRecommender(proximity=0)

    def test_equidistant_hotspots_tiebreak_by_key(self):
        """Regression: equidistant hotspots must resolve by ``(distance,
        key)``, never by training iteration order.

        ``(2,0,2)`` and ``(2,2,0)`` are both 2 moves from ``(2,1,1)``;
        the winner must be the smaller key whichever of them trained as
        the more popular (and therefore earlier-iterated) hotspot.
        """
        low_key, high_key = TileKey(2, 0, 2), TileKey(2, 2, 0)
        query = TileKey(2, 1, 1)
        assert query.manhattan_distance(low_key) == query.manhattan_distance(
            high_key
        )
        for favored in (low_key, high_key):
            other = high_key if favored == low_key else low_key
            traces = [trace_from_moves([], favored) for _ in range(5)]
            traces += [trace_from_moves([], other) for _ in range(2)]
            model = HotspotRecommender(num_hotspots=2, proximity=4)
            model.train(traces)
            # Popularity order differs between the two trainings...
            assert model.hotspots == (favored, other)
            # ...but the equidistant pick is always the smaller key.
            assert model.nearest_hotspot(query) == low_key

    def test_live_registry_overrides_training(self):
        from repro.core.popularity import SharedHotspotRegistry

        trained_tile = TileKey(2, 0, 0)
        live_tile = TileKey(2, 3, 1)
        model = HotspotRecommender(num_hotspots=1, proximity=4)
        model.train([trace_from_moves([], trained_tile) for _ in range(3)])
        registry = SharedHotspotRegistry()
        model.bind_registry(registry)
        # Empty registry: cold start falls back to the trained set.
        assert model.effective_hotspots() == (trained_tile,)
        registry.observe(live_tile)
        assert model.effective_hotspots() == (live_tile,)
        ctx = context_at(TileKey(2, 1, 1), (Move.PAN_LEFT,))
        assert model.predict(ctx)[0] == TileKey(2, 2, 1)  # toward live tile
        model.bind_registry(None)
        assert model.effective_hotspots() == (trained_tile,)


class TestSignatureBased:
    def test_requires_signatures(self, provider):
        with pytest.raises(ValueError):
            SignatureBasedRecommender(provider, ())

    def test_unknown_signature(self, provider):
        with pytest.raises(ValueError):
            SignatureBasedRecommender(provider, ("nope",))

    def test_name(self, provider):
        model = SignatureBasedRecommender(provider, ("histogram", "normal"))
        assert model.name == "sb:histogram+normal"

    def test_rankings_cover_candidates(self, provider, small_dataset):
        model = SignatureBasedRecommender(provider, ("histogram",))
        grid = small_dataset.pyramid.grid
        key = TileKey(2, 1, 1)
        ctx = PredictionContext(
            current=key,
            grid=grid,
            candidates=tuple(grid.candidates(key)),
            roi=(TileKey(2, 2, 1),),
        )
        ranked = model.predict(ctx)
        assert sorted(ranked) == sorted(ctx.candidates)

    def test_empty_roi_falls_back_to_current(self, provider, small_dataset):
        model = SignatureBasedRecommender(provider, ("histogram",))
        grid = small_dataset.pyramid.grid
        key = TileKey(2, 1, 1)
        ctx = PredictionContext(
            current=key,
            grid=grid,
            candidates=tuple(grid.candidates(key)),
        )
        ranked = model.predict(ctx)
        assert len(ranked) == len(ctx.candidates)

    def test_deterministic(self, provider, small_dataset):
        model = SignatureBasedRecommender(provider, ("histogram",))
        grid = small_dataset.pyramid.grid
        key = TileKey(2, 2, 1)
        ctx = PredictionContext(
            current=key,
            grid=grid,
            candidates=tuple(grid.candidates(key)),
            roi=(TileKey(2, 1, 1),),
        )
        assert model.predict(ctx) == model.predict(ctx)
