"""Unit tests for the query algebra and executor."""

import numpy as np
import pytest

from repro.arraydb import ArraySchema, Attribute, Database, Dimension
from repro.arraydb import query as Q
from repro.arraydb.errors import (
    ArrayExistsError,
    ArrayNotFoundError,
    QueryError,
    UnknownFunctionError,
)
from repro.arraydb.functions import FunctionRegistry


def load(db: Database, name: str, data: np.ndarray, chunk: int = 4) -> None:
    side = data.shape[0]
    schema = ArraySchema(
        name,
        attributes=(Attribute("v"),),
        dimensions=(
            Dimension("y", 0, side, chunk),
            Dimension("x", 0, side, chunk),
        ),
    )
    db.create_array(schema)
    db.write(name, "v", data)


class TestScanSubarray:
    def test_scan_returns_everything(self, db):
        data = np.arange(64.0).reshape(8, 8)
        load(db, "A", data)
        result = db.execute(Q.scan("A"))
        np.testing.assert_array_equal(result.attribute("v"), data)

    def test_scan_missing_array(self, db):
        with pytest.raises(ArrayNotFoundError):
            db.execute(Q.scan("missing"))

    def test_subarray_pushdown_reads_fewer_chunks(self, db):
        load(db, "A", np.arange(64.0).reshape(8, 8))
        result = db.execute(Q.subarray(Q.scan("A"), ((0, 4), (0, 4))))
        assert result.stats.chunks_read == 1
        assert result.shape == (4, 4)

    def test_subarray_origin(self, db):
        load(db, "A", np.arange(64.0).reshape(8, 8))
        result = db.execute(Q.subarray(Q.scan("A"), ((4, 8), (0, 4))))
        assert result.origin == (4, 0)

    def test_nested_subarray(self, db):
        data = np.arange(64.0).reshape(8, 8)
        load(db, "A", data)
        plan = Q.subarray(Q.subarray(Q.scan("A"), ((2, 8), (2, 8))), ((4, 6), (4, 6)))
        result = db.execute(plan)
        np.testing.assert_array_equal(result.attribute("v"), data[4:6, 4:6])

    def test_subarray_out_of_bounds(self, db):
        load(db, "A", np.arange(64.0).reshape(8, 8))
        with pytest.raises(Exception):
            db.execute(Q.subarray(Q.scan("A"), ((0, 9), (0, 8))))


class TestRegrid:
    def test_average_regrid(self, db):
        load(db, "A", np.arange(16.0).reshape(4, 4), chunk=4)
        result = db.execute(Q.regrid(Q.scan("A"), (2, 2)))
        expected = np.array([[2.5, 4.5], [10.5, 12.5]])
        np.testing.assert_array_equal(result.attribute("v"), expected)

    def test_sum_regrid(self, db):
        load(db, "A", np.ones((4, 4)), chunk=4)
        result = db.execute(Q.regrid(Q.scan("A"), (2, 2), "sum"))
        np.testing.assert_array_equal(result.attribute("v"), np.full((2, 2), 4.0))

    def test_max_regrid(self, db):
        load(db, "A", np.arange(16.0).reshape(4, 4), chunk=4)
        result = db.execute(Q.regrid(Q.scan("A"), (2, 2), "max"))
        np.testing.assert_array_equal(
            result.attribute("v"), np.array([[5.0, 7.0], [13.0, 15.0]])
        )

    def test_count_regrid(self, db):
        load(db, "A", np.ones((4, 4)), chunk=4)
        result = db.execute(Q.regrid(Q.scan("A"), (2, 2), "count"))
        np.testing.assert_array_equal(result.attribute("v"), np.full((2, 2), 4.0))

    def test_uneven_edges_aggregate_partial_windows(self, db):
        load(db, "A", np.arange(9.0).reshape(3, 3), chunk=3)
        result = db.execute(Q.regrid(Q.scan("A"), (2, 2)))
        assert result.shape == (2, 2)
        # Bottom-right window holds only cell (2, 2) = 8.
        assert result.attribute("v")[1, 1] == 8.0

    def test_paper_figure3_shape(self, db):
        """A 16x16 array with aggregation parameters (2,2) becomes 8x8."""
        load(db, "A", np.random.default_rng(0).random((16, 16)), chunk=8)
        result = db.execute(Q.regrid(Q.scan("A"), (2, 2)))
        assert result.shape == (8, 8)

    def test_unknown_aggregate(self, db):
        load(db, "A", np.ones((4, 4)), chunk=4)
        with pytest.raises(QueryError):
            db.execute(Q.regrid(Q.scan("A"), (2, 2), "median"))

    def test_bad_intervals(self, db):
        load(db, "A", np.ones((4, 4)), chunk=4)
        with pytest.raises(QueryError):
            db.execute(Q.regrid(Q.scan("A"), (0, 2)))


class TestApplyJoinFilter:
    def test_apply_adds_attribute(self, db):
        load(db, "A", np.full((4, 4), 3.0), chunk=4)
        plan = Q.apply(Q.scan("A"), "double", "add", ("v", "v"))
        result = db.execute(plan)
        np.testing.assert_array_equal(result.attribute("double"), np.full((4, 4), 6.0))
        assert "v" in result.attributes

    def test_apply_unknown_function(self, db):
        load(db, "A", np.ones((4, 4)), chunk=4)
        with pytest.raises(UnknownFunctionError):
            db.execute(Q.apply(Q.scan("A"), "out", "nope", ("v",)))

    def test_apply_duplicate_output(self, db):
        load(db, "A", np.ones((4, 4)), chunk=4)
        with pytest.raises(QueryError):
            db.execute(Q.apply(Q.scan("A"), "v", "identity", ("v",)))

    def test_join_qualifies_colliding_names(self, db):
        load(db, "A", np.ones((4, 4)), chunk=4)
        load(db, "B", np.full((4, 4), 2.0), chunk=4)
        result = db.execute(Q.join(Q.scan("A"), Q.scan("B")))
        assert set(result.attributes) == {"A.v", "B.v"}

    def test_join_keeps_distinct_names(self, db):
        load(db, "A", np.ones((4, 4)), chunk=4)
        schema = ArraySchema(
            "C",
            attributes=(Attribute("w"),),
            dimensions=(Dimension("y", 0, 4, 4), Dimension("x", 0, 4, 4)),
        )
        db.create_array(schema)
        db.write("C", "w", np.zeros((4, 4)))
        result = db.execute(Q.join(Q.scan("A"), Q.scan("C")))
        assert set(result.attributes) == {"v", "w"}

    def test_join_misaligned_raises(self, db):
        load(db, "A", np.ones((4, 4)), chunk=4)
        load(db, "B", np.ones((8, 8)), chunk=4)
        with pytest.raises(QueryError):
            db.execute(Q.join(Q.scan("A"), Q.scan("B")))

    def test_filter_zeroes_non_matching(self, db):
        load(db, "A", np.arange(16.0).reshape(4, 4), chunk=4)
        registry = db.registry
        if "gt5" not in registry:
            registry.register("gt5", lambda v: v > 5)
        result = db.execute(Q.filter_(Q.scan("A"), "gt5", ("v",)))
        out = result.attribute("v")
        assert out[0, 0] == 0.0
        assert out[3, 3] == 15.0

    def test_project_keeps_requested(self, db):
        load(db, "A", np.ones((4, 4)), chunk=4)
        plan = Q.project(
            Q.apply(Q.scan("A"), "w", "identity", ("v",)),
            ("w",),
        )
        result = db.execute(plan)
        assert list(result.attributes) == ["w"]

    def test_project_unknown_attribute(self, db):
        load(db, "A", np.ones((4, 4)), chunk=4)
        with pytest.raises(QueryError):
            db.execute(Q.project(Q.scan("A"), ("nope",)))


class TestAggregateStore:
    def test_aggregate_avg(self, db):
        load(db, "A", np.arange(16.0).reshape(4, 4), chunk=4)
        result = db.execute(Q.aggregate(Q.scan("A"), "avg", "v"))
        assert result.scalar == pytest.approx(7.5)

    def test_aggregate_count(self, db):
        load(db, "A", np.ones((4, 4)), chunk=4)
        result = db.execute(Q.aggregate(Q.scan("A"), "count", "v"))
        assert result.scalar == 16.0

    def test_aggregate_must_be_root(self, db):
        load(db, "A", np.ones((4, 4)), chunk=4)
        with pytest.raises(QueryError):
            db.execute(Q.project(Q.aggregate(Q.scan("A"), "avg", "v"), ("v",)))

    def test_store_materializes(self, db):
        load(db, "A", np.arange(16.0).reshape(4, 4), chunk=4)
        db.execute(Q.store(Q.regrid(Q.scan("A"), (2, 2)), "A2"))
        assert db.has_array("A2")
        assert db.schema("A2").shape == (2, 2)

    def test_store_duplicate_name(self, db):
        load(db, "A", np.ones((4, 4)), chunk=4)
        with pytest.raises(ArrayExistsError):
            db.execute(Q.store(Q.scan("A"), "A"))

    def test_store_with_chunks(self, db):
        load(db, "A", np.ones((8, 8)), chunk=4)
        db.execute(Q.store(Q.scan("A"), "B", chunks=(2, 2)))
        assert db.schema("B").chunk_shape == (2, 2)

    def test_stored_array_is_queryable(self, db):
        load(db, "A", np.arange(16.0).reshape(4, 4), chunk=4)
        db.execute(Q.store(Q.regrid(Q.scan("A"), (2, 2)), "A2"))
        result = db.execute(Q.scan("A2"))
        assert result.attribute("v")[0, 0] == pytest.approx(2.5)


class TestCostAccounting:
    def test_stats_populated(self, db):
        load(db, "A", np.ones((8, 8)), chunk=4)
        result = db.execute(Q.regrid(Q.scan("A"), (2, 2)))
        assert result.stats.chunks_read == 4
        assert result.stats.cells_scanned == 64
        assert result.stats.cells_computed == 16
        assert result.stats.elapsed_seconds > 0

    def test_clock_advances(self):
        from repro.arraydb import CostModel, VirtualClock

        clock = VirtualClock()
        db = Database(cost_model=CostModel(per_query_overhead=1.0), clock=clock)
        load(db, "A", np.ones((4, 4)), chunk=4)
        db.execute(Q.scan("A"))
        assert clock.now() >= 1.0

    def test_custom_registry(self):
        registry = FunctionRegistry()
        registry.register("triple", lambda v: v * 3)
        db = Database(registry=registry)
        load(db, "A", np.ones((4, 4)), chunk=4)
        result = db.execute(Q.apply(Q.scan("A"), "t", "triple", ("v",)))
        assert result.attribute("t")[0, 0] == 3.0

    def test_drop_array(self, db):
        load(db, "A", np.ones((4, 4)), chunk=4)
        db.drop_array("A")
        assert not db.has_array("A")
        with pytest.raises(ArrayNotFoundError):
            db.drop_array("A")
