"""The asyncio front end: lifecycle, concurrency, cancellation, and
replay equivalence with the synchronous facade."""

import asyncio

import pytest

from repro.cache.manager import CacheManager
from repro.cache.tile_cache import TileCache
from repro.core.allocation import SingleModelStrategy
from repro.core.engine import PredictionEngine
from repro.middleware.aio import AsyncForeCacheService
from repro.middleware.client import AsyncBrowsingSession, BrowsingSession
from repro.middleware.config import PrefetchPolicy, ServiceConfig
from repro.middleware.protocol import (
    DuplicateSessionError,
    SessionClosedError,
)
from repro.middleware.server import ForeCacheServer
from repro.recommenders.momentum import MomentumRecommender
from repro.tiles.key import TileKey
from repro.tiles.moves import Move


def make_engine(grid) -> PredictionEngine:
    model = MomentumRecommender()
    return PredictionEngine(
        grid, {model.name: model}, SingleModelStrategy(model.name)
    )


def run(coro):
    return asyncio.run(coro)


class TestAsyncLifecycle:
    def test_open_request_close(self, small_dataset):
        async def scenario():
            async with AsyncForeCacheService.build(
                small_dataset.pyramid,
                ServiceConfig(prefetch=PrefetchPolicy(k=5)),
            ) as service:
                session = await service.open_session(
                    make_engine(small_dataset.pyramid.grid)
                )
                response = await session.request(None, TileKey(0, 0, 0))
                assert response.tile.key == TileKey(0, 0, 0)
                info = await session.info()
                assert info.requests == 1
                await session.close()
                with pytest.raises(SessionClosedError):
                    await session.request(Move.ZOOM_IN_NW, TileKey(1, 0, 0))

        run(scenario())

    def test_duplicate_session_rejected(self, small_dataset):
        async def scenario():
            async with AsyncForeCacheService.build(
                small_dataset.pyramid
            ) as service:
                grid = small_dataset.pyramid.grid
                await service.open_session(make_engine(grid), "bob")
                with pytest.raises(DuplicateSessionError):
                    await service.open_session(make_engine(grid), "bob")

        run(scenario())

    def test_double_start_rejected(self, small_dataset):
        async def scenario():
            async with AsyncForeCacheService.build(
                small_dataset.pyramid
            ) as service:
                session = await service.open_session(
                    make_engine(small_dataset.pyramid.grid)
                )
                browser = AsyncBrowsingSession(session)
                await browser.start()
                with pytest.raises(RuntimeError):
                    await browser.start()

        run(scenario())

    def test_aclose_is_idempotent(self, small_dataset):
        async def scenario():
            service = AsyncForeCacheService.build(small_dataset.pyramid)
            await service.aclose()
            await service.aclose()

        run(scenario())

    def test_lifecycle_never_hops_to_the_bridge_pool(self, small_dataset):
        """open/close are served natively on the event loop.

        The cluster router re-opens sessions on every failover, making
        session lifecycle a hot path; it must stay pure loop-side
        bookkeeping.  A counting shim over the bridge pool's ``submit``
        proves no lifecycle call dispatches an executor job — while a
        cache miss (the one genuinely blocking operation) still does.
        """
        grid = small_dataset.pyramid.grid

        async def scenario():
            async with AsyncForeCacheService.build(
                small_dataset.pyramid,
                ServiceConfig(prefetch=PrefetchPolicy(k=4)),
            ) as service:
                submits = 0
                original = service._executor.submit

                def counting_submit(*args, **kwargs):
                    nonlocal submits
                    submits += 1
                    return original(*args, **kwargs)

                service._executor.submit = counting_submit
                try:
                    session = await service.open_session(
                        make_engine(grid), "native-1"
                    )
                    await session.info()
                    await session.close()
                    await service.open_session(make_engine(grid), "native-2")
                    await service.close_session("native-2")
                    assert submits == 0
                    # Sanity: the shim does count — a cold-cache miss
                    # must travel to the bridge pool.
                    probe = await service.open_session(make_engine(grid))
                    await probe.request(None, TileKey(0, 0, 0))
                    assert submits == 1
                finally:
                    service._executor.submit = original

        run(scenario())


class TestAsyncConcurrency:
    def test_many_concurrent_sessions(self, small_dataset):
        """Concurrent coroutine sessions share the cache race-free."""

        async def drive(service, session_id):
            session = await service.open_session(
                make_engine(small_dataset.pyramid.grid), session_id
            )
            browser = AsyncBrowsingSession(session)
            response = await browser.start()
            assert response.tile.key == small_dataset.pyramid.grid.root
            for _ in range(5):
                moves = browser.available_moves
                response = await browser.move(moves[session_id % len(moves)])
                assert response.tile.key == browser.current
            return session.recorder.count

        async def scenario():
            async with AsyncForeCacheService.build(
                small_dataset.pyramid,
                ServiceConfig(prefetch=PrefetchPolicy(k=4)),
            ) as service:
                counts = await asyncio.gather(
                    *(drive(service, i) for i in range(6))
                )
                assert counts == [6] * 6
                assert service.service.cache_manager.requests == 36

        run(scenario())

    def test_cancelled_start_leaves_client_fresh(self, small_dataset):
        """A start() cancelled before the server saw it must not brick
        the client — position advances only on success."""

        async def scenario():
            async with AsyncForeCacheService.build(
                small_dataset.pyramid
            ) as service:
                session = await service.open_session(
                    make_engine(small_dataset.pyramid.grid)
                )
                browser = AsyncBrowsingSession(session)
                task = asyncio.create_task(browser.start())
                task.cancel()  # before the executor ever runs it
                with pytest.raises(asyncio.CancelledError):
                    await task
                assert browser.current is None
                response = await browser.start()  # retry succeeds
                assert response.tile.key == small_dataset.pyramid.grid.root

        run(scenario())

    def test_cancellation_leaves_session_usable(self, small_dataset):
        """Cancelling an in-flight request must not wedge the session."""
        manager = CacheManager(
            small_dataset.pyramid,
            TileCache(),
            backend_delay_seconds=0.05,
        )

        async def scenario():
            async with AsyncForeCacheService.build(
                small_dataset.pyramid, cache_manager=manager
            ) as service:
                session = await service.open_session(
                    make_engine(small_dataset.pyramid.grid)
                )
                task = asyncio.create_task(
                    session.request(None, TileKey(2, 1, 1))
                )
                await asyncio.sleep(0.01)  # let it reach the slow backend
                task.cancel()
                with pytest.raises(asyncio.CancelledError):
                    await task
                # Give the worker thread time to finish the fetch behind
                # the cancellation; the session serves on, now from cache.
                await asyncio.sleep(0.15)
                response = await session.request(None, TileKey(2, 1, 1))
                assert response.tile.key == TileKey(2, 1, 1)
                assert response.hit
                assert session.recorder.count == 2

        run(scenario())


class TestAsyncEquivalence:
    def test_async_replay_matches_legacy(self, small_dataset, small_study):
        """Same trace, same tiles, same hits, same virtual latencies."""
        trace = max(small_study.traces, key=len)
        grid = small_dataset.pyramid.grid

        legacy = ForeCacheServer(
            small_dataset.pyramid, make_engine(grid), prefetch_k=5
        )
        legacy_responses = BrowsingSession(legacy).replay(trace)

        async def scenario():
            async with AsyncForeCacheService.build(
                small_dataset.pyramid,
                ServiceConfig(prefetch=PrefetchPolicy(k=5)),
            ) as service:
                session = await service.open_session(make_engine(grid))
                return await AsyncBrowsingSession(session).replay(trace)

        async_responses = run(scenario())
        signature = [
            (r.tile.key, r.hit, r.latency_seconds, r.phase)
            for r in legacy_responses
        ]
        assert [
            (r.tile.key, r.hit, r.latency_seconds, r.phase)
            for r in async_responses
        ] == signature
