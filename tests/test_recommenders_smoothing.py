"""Unit tests for Kneser–Ney smoothing."""

import pytest

from repro.recommenders.smoothing import KneserNeyEstimator

VOCAB = ("a", "b", "c")


class TestFitting:
    def test_requires_fit(self):
        estimator = KneserNeyEstimator(order=2, vocabulary=VOCAB)
        with pytest.raises(RuntimeError):
            estimator.probability("a", ("a", "b"))

    def test_rejects_unknown_symbols(self):
        estimator = KneserNeyEstimator(order=1, vocabulary=VOCAB)
        with pytest.raises(ValueError):
            estimator.fit([["a", "z"]])

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            KneserNeyEstimator(order=0, vocabulary=VOCAB)
        with pytest.raises(ValueError):
            KneserNeyEstimator(order=1, vocabulary=VOCAB, discount=1.0)
        with pytest.raises(ValueError):
            KneserNeyEstimator(order=1, vocabulary=())

    def test_duplicate_vocabulary_collapsed(self):
        estimator = KneserNeyEstimator(order=1, vocabulary=("a", "a", "b"))
        assert estimator.vocabulary == ("a", "b")


class TestProbabilities:
    def _fitted(self, order=2):
        estimator = KneserNeyEstimator(order=order, vocabulary=VOCAB)
        estimator.fit([
            ["a", "b", "a", "b", "a", "b", "c"],
            ["a", "b", "a", "b"],
        ])
        return estimator

    def test_distribution_sums_to_one(self):
        estimator = self._fitted()
        for context in [("a", "b"), ("b", "a"), ("c", "c"), ()]:
            total = sum(estimator.distribution(context).values())
            assert total == pytest.approx(1.0, abs=1e-9)

    def test_all_probabilities_positive(self):
        estimator = self._fitted()
        for symbol in VOCAB:
            assert estimator.probability(symbol, ("c", "c")) > 0.0

    def test_frequent_transition_dominates(self):
        estimator = self._fitted()
        dist = estimator.distribution(("b", "a"))
        # "a b" is nearly always followed by... after (b, a) comes b.
        assert dist["b"] == max(dist.values())

    def test_unseen_context_backs_off(self):
        """An unseen context must fall through to the lower order."""
        estimator = self._fitted()
        for symbol in VOCAB:
            assert estimator.probability(symbol, ("c", "b")) == pytest.approx(
                estimator.probability(symbol, ("b",))
            )

    def test_long_context_truncated(self):
        estimator = self._fitted(order=2)
        long_ctx = ("a", "a", "a", "b", "a")
        short_ctx = ("b", "a")
        assert estimator.probability("b", long_ctx) == pytest.approx(
            estimator.probability("b", short_ctx)
        )

    def test_short_context_supported(self):
        estimator = self._fitted(order=3)
        assert estimator.probability("a", ("b",)) > 0.0

    def test_empty_training_gives_uniform(self):
        estimator = KneserNeyEstimator(order=2, vocabulary=VOCAB)
        estimator.fit([])
        dist = estimator.distribution(("a", "b"))
        for value in dist.values():
            assert value == pytest.approx(1.0 / 3.0)

    def test_continuation_counting(self):
        """Kneser–Ney's hallmark: a symbol seen often but after only one
        context gets less backoff mass than one seen after many."""
        estimator = KneserNeyEstimator(
            order=1, vocabulary=("a", "b", "c", "d", "x", "y")
        )
        # "x" always follows "a" (one continuation context, many times);
        # "y" follows "b", "c", and "d" (three contexts, once each).
        estimator.fit([
            ["a", "x"] * 8,
            ["b", "y", "c", "y", "d", "y"],
        ])
        # Neither x nor y ever followed "x": pure backoff territory.
        dist = estimator.distribution(("x",))
        assert dist["y"] > dist["x"]

    def test_higher_discount_flattens(self):
        gentle = KneserNeyEstimator(order=1, vocabulary=VOCAB, discount=0.1)
        harsh = KneserNeyEstimator(order=1, vocabulary=VOCAB, discount=0.9)
        data = [["a", "b"] * 10]
        gentle.fit(data)
        harsh.fit(data)
        assert gentle.probability("b", ("a",)) > harsh.probability("b", ("a",))
