"""Integration tests: the pyramid on disk-backed storage, scaled tasks."""

import numpy as np
import pytest

from repro.arraydb import ArraySchema, Attribute, Database, Dimension
from repro.arraydb.storage import DiskChunkStore
from repro.modis.regions import DEFAULT_TASKS, scaled_tasks
from repro.tiles.key import TileKey
from repro.tiles.pyramid import TilePyramid


class TestDiskBackedPyramid:
    def test_build_and_fetch_from_disk(self, tmp_path):
        db = Database(store=DiskChunkStore(tmp_path / "chunks"))
        schema = ArraySchema(
            "S",
            attributes=(Attribute("v"),),
            dimensions=(Dimension("y", 0, 16, 16), Dimension("x", 0, 16, 16)),
        )
        db.create_array(schema)
        data = np.random.default_rng(0).random((16, 16))
        db.write("S", "v", data)
        pyramid = TilePyramid.build(db, "S", tile_size=4)

        tile = pyramid.fetch_tile(TileKey(2, 1, 1), charge=False)
        np.testing.assert_array_equal(tile.attribute("v"), data[4:8, 4:8])

    def test_chunks_survive_reopen(self, tmp_path):
        store = DiskChunkStore(tmp_path / "chunks")
        db = Database(store=store)
        schema = ArraySchema(
            "S",
            attributes=(Attribute("v"),),
            dimensions=(Dimension("y", 0, 8, 4), Dimension("x", 0, 8, 4)),
        )
        db.create_array(schema)
        data = np.arange(64.0).reshape(8, 8)
        db.write("S", "v", data)

        # A second database over the same directory sees the chunks once
        # the catalog entry is recreated.
        reopened_store = DiskChunkStore(tmp_path / "chunks")
        db2 = Database(store=reopened_store)
        db2.create_array(schema)
        np.testing.assert_array_equal(db2.read("S", "v"), data)


class TestScaledTasks:
    def test_full_scale_unchanged(self):
        assert scaled_tasks(2048) == DEFAULT_TASKS
        assert scaled_tasks(4096) == DEFAULT_TASKS

    def test_half_scale_relaxed(self):
        tasks = scaled_tasks(1024)
        for scaled, original in zip(tasks, DEFAULT_TASKS):
            assert scaled.min_fraction < original.min_fraction
            assert scaled.ndsi_threshold <= original.ndsi_threshold
            assert scaled.tiles_to_find <= original.tiles_to_find
            # Geometry is untouched.
            assert scaled.bbox == original.bbox
            assert scaled.target_depth == original.target_depth

    def test_quarter_scale_more_relaxed(self):
        half = scaled_tasks(1024)
        quarter = scaled_tasks(512)
        for h, q in zip(half, quarter):
            assert q.min_fraction <= h.min_fraction
            assert q.ndsi_threshold <= h.ndsi_threshold

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            scaled_tasks(0)
