"""Unit tests for array schemas."""

import numpy as np
import pytest

from repro.arraydb.errors import SchemaError
from repro.arraydb.schema import ArraySchema, Attribute, Dimension


class TestDimension:
    def test_length(self):
        assert Dimension("x", 0, 16, 4).length == 16

    def test_length_with_nonzero_start(self):
        assert Dimension("x", 4, 16, 4).length == 12

    def test_num_chunks_exact(self):
        assert Dimension("x", 0, 16, 4).num_chunks == 4

    def test_num_chunks_partial(self):
        assert Dimension("x", 0, 10, 4).num_chunks == 3

    def test_chunk_of(self):
        dim = Dimension("x", 0, 16, 4)
        assert dim.chunk_of(0) == 0
        assert dim.chunk_of(3) == 0
        assert dim.chunk_of(4) == 1
        assert dim.chunk_of(15) == 3

    def test_chunk_of_out_of_range(self):
        with pytest.raises(IndexError):
            Dimension("x", 0, 16, 4).chunk_of(16)

    def test_chunk_bounds(self):
        dim = Dimension("x", 0, 10, 4)
        assert dim.chunk_bounds(0) == (0, 4)
        assert dim.chunk_bounds(2) == (8, 10)

    def test_chunk_bounds_out_of_range(self):
        with pytest.raises(IndexError):
            Dimension("x", 0, 10, 4).chunk_bounds(3)

    def test_rejects_empty_range(self):
        with pytest.raises(SchemaError):
            Dimension("x", 5, 5, 1)

    def test_rejects_nonpositive_chunk(self):
        with pytest.raises(SchemaError):
            Dimension("x", 0, 8, 0)

    def test_rejects_empty_name(self):
        with pytest.raises(SchemaError):
            Dimension("", 0, 8, 4)

    def test_str(self):
        assert str(Dimension("x", 0, 8, 4)) == "x=0:8:4"


class TestAttribute:
    def test_default_dtype(self):
        assert Attribute("v").numpy_dtype == np.dtype("float64")

    def test_custom_dtype(self):
        assert Attribute("v", "int32").numpy_dtype == np.dtype("int32")

    def test_rejects_bad_dtype(self):
        with pytest.raises(SchemaError):
            Attribute("v", "not_a_dtype")

    def test_rejects_empty_name(self):
        with pytest.raises(SchemaError):
            Attribute("")


class TestArraySchema:
    def _schema(self) -> ArraySchema:
        return ArraySchema(
            "A",
            attributes=(Attribute("v"), Attribute("w", "int32")),
            dimensions=(Dimension("y", 0, 8, 4), Dimension("x", 0, 16, 4)),
        )

    def test_shape(self):
        assert self._schema().shape == (8, 16)

    def test_cell_count(self):
        assert self._schema().cell_count == 128

    def test_chunk_grid(self):
        assert self._schema().chunk_grid == (2, 4)

    def test_attribute_lookup(self):
        assert self._schema().attribute("w").dtype == "int32"

    def test_attribute_lookup_missing(self):
        with pytest.raises(SchemaError):
            self._schema().attribute("nope")

    def test_has_attribute(self):
        schema = self._schema()
        assert schema.has_attribute("v")
        assert not schema.has_attribute("nope")

    def test_dimension_lookup(self):
        assert self._schema().dimension("x").length == 16

    def test_dimension_lookup_missing(self):
        with pytest.raises(SchemaError):
            self._schema().dimension("z")

    def test_renamed(self):
        renamed = self._schema().renamed("B")
        assert renamed.name == "B"
        assert renamed.shape == (8, 16)

    def test_same_grid(self):
        a = self._schema()
        b = a.renamed("B")
        assert a.same_grid(b)

    def test_different_grid(self):
        a = self._schema()
        c = ArraySchema(
            "C",
            attributes=(Attribute("v"),),
            dimensions=(Dimension("y", 0, 4, 4), Dimension("x", 0, 16, 4)),
        )
        assert not a.same_grid(c)

    def test_rejects_duplicate_attributes(self):
        with pytest.raises(SchemaError):
            ArraySchema(
                "A",
                attributes=(Attribute("v"), Attribute("v")),
                dimensions=(Dimension("x", 0, 4, 2),),
            )

    def test_rejects_duplicate_dimensions(self):
        with pytest.raises(SchemaError):
            ArraySchema(
                "A",
                attributes=(Attribute("v"),),
                dimensions=(Dimension("x", 0, 4, 2), Dimension("x", 0, 4, 2)),
            )

    def test_rejects_attribute_dimension_collision(self):
        with pytest.raises(SchemaError):
            ArraySchema(
                "A",
                attributes=(Attribute("x"),),
                dimensions=(Dimension("x", 0, 4, 2),),
            )

    def test_rejects_no_attributes(self):
        with pytest.raises(SchemaError):
            ArraySchema("A", attributes=(), dimensions=(Dimension("x", 0, 4, 2),))

    def test_str_format(self):
        text = str(self._schema())
        assert text.startswith("A<")
        assert "y=0:8:4" in text
