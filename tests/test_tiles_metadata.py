"""Unit tests for the shared metadata store and the build pipeline."""

import numpy as np
import pytest

from repro.arraydb import ArraySchema, Attribute, Database, Dimension
from repro.tiles.builder import build_tiles
from repro.tiles.key import TileKey
from repro.tiles.metadata import MetadataStore

KEY = TileKey(2, 1, 3)


class TestMetadataStore:
    def test_put_get(self):
        store = MetadataStore()
        store.put(KEY, "histogram", np.asarray([0.5, 0.5]))
        np.testing.assert_array_equal(store.get(KEY, "histogram"), [0.5, 0.5])

    def test_get_missing_is_none(self):
        assert MetadataStore().get(KEY, "histogram") is None

    def test_has(self):
        store = MetadataStore()
        assert not store.has(KEY, "x")
        store.put(KEY, "x", np.zeros(2))
        assert store.has(KEY, "x")

    def test_get_or_compute_computes_once(self):
        store = MetadataStore()
        calls = []

        def compute():
            calls.append(1)
            return np.ones(3)

        first = store.get_or_compute(KEY, "sig", compute)
        second = store.get_or_compute(KEY, "sig", compute)
        np.testing.assert_array_equal(first, second)
        assert len(calls) == 1
        assert store.compute_count == 1
        assert store.hit_count == 1

    def test_signature_names(self):
        store = MetadataStore()
        store.put(KEY, "a", np.zeros(1))
        store.put(KEY, "b", np.zeros(1))
        assert store.signature_names() == {"a", "b"}

    def test_len_and_clear(self):
        store = MetadataStore()
        store.put(KEY, "a", np.zeros(1))
        assert len(store) == 1
        store.clear()
        assert len(store) == 0
        assert store.compute_count == 0

    def test_save_load_roundtrip(self, tmp_path):
        store = MetadataStore()
        store.put(KEY, "a", np.asarray([1.0, 2.0]))
        store.put(TileKey(0, 0, 0), "b", np.asarray([3.0]))
        path = tmp_path / "meta.npz"
        store.save(path)
        loaded = MetadataStore.load(path)
        assert len(loaded) == 2
        np.testing.assert_array_equal(loaded.get(KEY, "a"), [1.0, 2.0])

    def test_vectors_stored_as_float64(self):
        store = MetadataStore()
        store.put(KEY, "a", np.asarray([1, 2], dtype="int32"))
        assert store.get(KEY, "a").dtype == np.dtype("float64")


class TestBuildTiles:
    def _db_with_source(self) -> Database:
        db = Database()
        schema = ArraySchema(
            "S",
            attributes=(Attribute("v"),),
            dimensions=(Dimension("y", 0, 16, 16), Dimension("x", 0, 16, 16)),
        )
        db.create_array(schema)
        db.write("S", "v", np.random.default_rng(1).random((16, 16)))
        return db

    def test_builds_pyramid_and_report(self):
        db = self._db_with_source()
        pyramid, store, report = build_tiles(db, "S", tile_size=4)
        assert report.num_levels == 3
        assert report.total_tiles == 21
        assert report.tile_size == 4
        assert report.bytes_per_tile == 16 * 8
        assert report.total_bytes == 21 * 16 * 8

    def test_metadata_computed_for_all_tiles(self):
        db = self._db_with_source()
        _, store, report = build_tiles(
            db,
            "S",
            tile_size=4,
            metadata={"mean": lambda block: np.asarray([block.mean()])},
        )
        assert len(store) == 21
        assert report.metadata_vectors == 21

    def test_metadata_restricted_levels(self):
        db = self._db_with_source()
        _, store, _ = build_tiles(
            db,
            "S",
            tile_size=4,
            metadata={"mean": lambda block: np.asarray([block.mean()])},
            metadata_levels=[0, 1],
        )
        assert len(store) == 5

    def test_metadata_values_correct(self):
        db = self._db_with_source()
        pyramid, store, _ = build_tiles(
            db,
            "S",
            tile_size=4,
            metadata={"mean": lambda block: np.asarray([block.mean()])},
        )
        key = TileKey(2, 0, 0)
        tile = pyramid.fetch_tile(key, charge=False)
        assert store.get(key, "mean")[0] == pytest.approx(tile.attribute("v").mean())

    def test_external_store_reused(self):
        db = self._db_with_source()
        external = MetadataStore()
        _, store, _ = build_tiles(
            db,
            "S",
            tile_size=4,
            metadata={"mean": lambda block: np.asarray([block.mean()])},
            store=external,
        )
        assert store is external
