"""Unit tests for ROI tracking, history, allocation, and the engine."""

import pytest

from repro.core.allocation import (
    InterleavedStrategy,
    PaperFinalStrategy,
    PerPhaseSplitStrategy,
    SingleModelStrategy,
)
from repro.core.engine import PredictionEngine
from repro.core.history import SessionHistory
from repro.core.roi import ROITracker
from repro.phases.model import AnalysisPhase
from repro.recommenders.base import PredictionContext, Recommender
from repro.recommenders.momentum import MomentumRecommender
from repro.tiles.key import TileKey
from repro.tiles.moves import Move
from repro.tiles.pyramid import TileGrid

P = AnalysisPhase
GRID = TileGrid(4)


class TestROITracker:
    """Algorithm 1, line by line."""

    def test_initial_roi_empty(self):
        assert ROITracker().roi == ()

    def test_zoom_in_opens_temp(self):
        tracker = ROITracker()
        tile = TileKey(1, 0, 0)
        tracker.update(Move.ZOOM_IN_NW, tile)
        assert tracker.collecting
        assert tracker.in_progress == (tile,)
        assert tracker.roi == ()

    def test_pan_extends_temp(self):
        tracker = ROITracker()
        a, b = TileKey(2, 0, 0), TileKey(2, 1, 0)
        tracker.update(Move.ZOOM_IN_NW, a)
        tracker.update(Move.PAN_RIGHT, b)
        assert tracker.in_progress == (a, b)

    def test_zoom_out_commits(self):
        tracker = ROITracker()
        a, b = TileKey(2, 0, 0), TileKey(2, 1, 0)
        tracker.update(Move.ZOOM_IN_NW, a)
        tracker.update(Move.PAN_RIGHT, b)
        tracker.update(Move.ZOOM_OUT, TileKey(1, 0, 0))
        assert tracker.roi == (a, b)
        assert not tracker.collecting
        assert tracker.in_progress == ()

    def test_zoom_in_resets_temp(self):
        """Each zoom-in starts a fresh tempROI (Algorithm 1 line 7)."""
        tracker = ROITracker()
        tracker.update(Move.ZOOM_IN_NW, TileKey(1, 0, 0))
        tracker.update(Move.ZOOM_IN_NW, TileKey(2, 0, 0))
        assert tracker.in_progress == (TileKey(2, 0, 0),)

    def test_zoom_out_without_zoom_in_does_not_commit(self):
        tracker = ROITracker()
        tracker.update(Move.PAN_LEFT, TileKey(2, 1, 0))
        tracker.update(Move.ZOOM_OUT, TileKey(1, 0, 0))
        assert tracker.roi == ()

    def test_pan_before_zoom_in_ignored(self):
        tracker = ROITracker()
        tracker.update(Move.PAN_LEFT, TileKey(2, 1, 0))
        assert tracker.in_progress == ()

    def test_second_cycle_replaces_roi(self):
        tracker = ROITracker()
        tracker.update(Move.ZOOM_IN_NW, TileKey(2, 0, 0))
        tracker.update(Move.ZOOM_OUT, TileKey(1, 0, 0))
        first = tracker.roi
        tracker.update(Move.ZOOM_IN_SE, TileKey(2, 3, 3))
        tracker.update(Move.ZOOM_OUT, TileKey(1, 1, 1))
        assert tracker.roi == (TileKey(2, 3, 3),)
        assert tracker.roi != first

    def test_duplicate_pan_tile_not_duplicated(self):
        tracker = ROITracker()
        a, b = TileKey(2, 0, 0), TileKey(2, 1, 0)
        tracker.update(Move.ZOOM_IN_NW, a)
        tracker.update(Move.PAN_RIGHT, b)
        tracker.update(Move.PAN_LEFT, a)
        assert tracker.in_progress == (a, b)

    def test_initial_request_no_effect(self):
        tracker = ROITracker()
        tracker.update(None, TileKey(0, 0, 0))
        assert tracker.roi == ()
        assert not tracker.collecting

    def test_reset(self):
        tracker = ROITracker()
        tracker.update(Move.ZOOM_IN_NW, TileKey(1, 0, 0))
        tracker.reset()
        assert tracker.roi == ()
        assert tracker.in_progress == ()


class TestSessionHistory:
    def test_record_and_query(self):
        history = SessionHistory(5)
        history.record(None, TileKey(0, 0, 0))
        history.record(Move.ZOOM_IN_NW, TileKey(1, 0, 0))
        assert history.current == TileKey(1, 0, 0)
        assert history.last_move is Move.ZOOM_IN_NW
        assert len(history) == 2

    def test_bounded_length(self):
        history = SessionHistory(3)
        for i in range(5):
            history.record(Move.PAN_RIGHT, TileKey(3, i, 0))
        assert len(history.tiles) == 3
        assert history.tiles[0] == TileKey(3, 2, 0)

    def test_initial_move_not_recorded(self):
        history = SessionHistory(5)
        history.record(None, TileKey(0, 0, 0))
        assert history.moves == ()

    def test_recent_moves(self):
        history = SessionHistory(10)
        moves = [Move.PAN_LEFT, Move.PAN_RIGHT, Move.ZOOM_OUT]
        tile = TileKey(2, 1, 1)
        for move in moves:
            history.record(move, tile)
        assert history.recent_moves(2) == (Move.PAN_RIGHT, Move.ZOOM_OUT)
        assert history.recent_moves(10) == tuple(moves)

    def test_previous_tile(self):
        history = SessionHistory(5)
        assert history.previous_tile() is None
        history.record(None, TileKey(0, 0, 0))
        history.record(Move.ZOOM_IN_NW, TileKey(1, 0, 0))
        assert history.previous_tile() == TileKey(0, 0, 0)

    def test_clear(self):
        history = SessionHistory(5)
        history.record(None, TileKey(0, 0, 0))
        history.clear()
        assert history.current is None
        assert len(history) == 0

    def test_rejects_bad_length(self):
        with pytest.raises(ValueError):
            SessionHistory(0)


class TestAllocationStrategies:
    def test_single_model(self):
        assert SingleModelStrategy("m").allocate(P.FORAGING, 5) == [("m", 5)]

    def test_interleaved_round_robin(self):
        strategy = InterleavedStrategy(("a", "b"))
        assert strategy.allocate(None, 5) == [("a", 3), ("b", 2)]

    def test_interleaved_requires_models(self):
        with pytest.raises(ValueError):
            InterleavedStrategy(())

    def test_per_phase_split_navigation(self):
        strategy = PerPhaseSplitStrategy("ab", "sb")
        assert strategy.allocate(P.NAVIGATION, 4) == [("ab", 4)]

    def test_per_phase_split_sensemaking(self):
        strategy = PerPhaseSplitStrategy("ab", "sb")
        assert strategy.allocate(P.SENSEMAKING, 4) == [("sb", 4)]

    def test_per_phase_split_foraging_even(self):
        strategy = PerPhaseSplitStrategy("ab", "sb")
        assert strategy.allocate(P.FORAGING, 4) == [("ab", 2), ("sb", 2)]
        assert strategy.allocate(P.FORAGING, 5) == [("ab", 3), ("sb", 2)]

    def test_paper_final_sensemaking_sb_only(self):
        strategy = PaperFinalStrategy("ab", "sb")
        assert strategy.allocate(P.SENSEMAKING, 6) == [("sb", 6)]

    def test_paper_final_ab_first_four(self):
        strategy = PaperFinalStrategy("ab", "sb")
        assert strategy.allocate(P.NAVIGATION, 3) == [("ab", 3)]
        assert strategy.allocate(P.FORAGING, 6) == [("ab", 4), ("sb", 2)]

    def test_paper_final_unknown_phase(self):
        strategy = PaperFinalStrategy("ab", "sb")
        assert strategy.allocate(None, 5) == [("ab", 4), ("sb", 1)]

    def test_quotas_sum_to_k(self):
        strategies = [
            SingleModelStrategy("m"),
            InterleavedStrategy(("a", "b", "c")),
            PerPhaseSplitStrategy("ab", "sb"),
            PaperFinalStrategy("ab", "sb"),
        ]
        for strategy in strategies:
            for phase in list(P) + [None]:
                for k in range(1, 10):
                    total = sum(q for _, q in strategy.allocate(phase, k))
                    assert total == k, (strategy, phase, k)

    def test_budget_must_be_positive(self):
        with pytest.raises(ValueError):
            SingleModelStrategy("m").allocate(None, 0)


class _FixedRecommender(Recommender):
    """Returns a canned ranking (for engine unit tests)."""

    def __init__(self, name: str, tiles):
        self.name = name
        self._tiles = list(tiles)

    def predict(self, context: PredictionContext):
        return [t for t in self._tiles if t in context.candidates]


class TestPredictionEngine:
    def test_observe_then_predict(self):
        model = MomentumRecommender()
        engine = PredictionEngine(
            GRID, {model.name: model}, SingleModelStrategy(model.name)
        )
        engine.observe(None, TileKey(2, 1, 1))
        engine.observe(Move.PAN_RIGHT, TileKey(2, 2, 1))
        result = engine.predict(3)
        assert len(result.tiles) == 3
        assert result.tiles[0] == TileKey(2, 3, 1)  # momentum repeat

    def test_predict_before_observe_raises(self):
        model = MomentumRecommender()
        engine = PredictionEngine(
            GRID, {model.name: model}, SingleModelStrategy(model.name)
        )
        with pytest.raises(RuntimeError):
            engine.predict(1)

    def test_invalid_tile_rejected(self):
        model = MomentumRecommender()
        engine = PredictionEngine(
            GRID, {model.name: model}, SingleModelStrategy(model.name)
        )
        with pytest.raises(ValueError):
            engine.observe(None, TileKey(9, 0, 0))

    def test_allocation_order_respected(self):
        key = TileKey(2, 1, 1)
        neighbors = GRID.candidates(key)
        a = _FixedRecommender("a", neighbors)
        b = _FixedRecommender("b", list(reversed(neighbors)))
        engine = PredictionEngine(
            GRID,
            {"a": a, "b": b},
            InterleavedStrategy(("a", "b")),
        )
        engine.observe(None, key)
        result = engine.predict(2)
        assert result.tiles == [neighbors[0], neighbors[-1]]
        assert result.attributions[neighbors[0]] == "a"
        assert result.attributions[neighbors[-1]] == "b"

    def test_duplicates_not_double_counted(self):
        key = TileKey(2, 1, 1)
        neighbors = GRID.candidates(key)
        a = _FixedRecommender("a", neighbors[:2])
        b = _FixedRecommender("b", neighbors[:3])
        engine = PredictionEngine(
            GRID, {"a": a, "b": b}, InterleavedStrategy(("a", "b"))
        )
        engine.observe(None, key)
        result = engine.predict(3)
        assert len(set(result.tiles)) == 3

    def test_shortfall_refilled(self):
        key = TileKey(2, 1, 1)
        neighbors = GRID.candidates(key)
        short = _FixedRecommender("short", neighbors[:1])
        full = _FixedRecommender("full", neighbors)
        engine = PredictionEngine(
            GRID,
            {"short": short, "full": full},
            InterleavedStrategy(("short", "full")),
        )
        engine.observe(None, key)
        result = engine.predict(4)
        assert len(result.tiles) == 4

    def test_unknown_model_in_allocation(self):
        model = MomentumRecommender()
        engine = PredictionEngine(
            GRID, {model.name: model}, SingleModelStrategy("ghost")
        )
        engine.observe(None, TileKey(1, 0, 0))
        with pytest.raises(KeyError):
            engine.predict(1)

    def test_phase_predictor_consulted(self):
        calls = []

        def predictor(tile, move):
            calls.append((tile, move))
            return P.SENSEMAKING

        key = TileKey(2, 1, 1)
        sb = _FixedRecommender("sb", GRID.candidates(key))
        ab = _FixedRecommender("ab", [])
        engine = PredictionEngine(
            GRID,
            {"ab": ab, "sb": sb},
            PaperFinalStrategy("ab", "sb"),
            phase_predictor=predictor,
        )
        engine.observe(None, key)
        result = engine.predict(2)
        assert result.phase is P.SENSEMAKING
        assert calls
        assert all(result.attributions[t] == "sb" for t in result.tiles)

    def test_roi_flows_to_context(self):
        model = MomentumRecommender()
        engine = PredictionEngine(
            GRID, {model.name: model}, SingleModelStrategy(model.name)
        )
        engine.observe(None, TileKey(1, 0, 0))
        engine.observe(Move.ZOOM_IN_NW, TileKey(2, 0, 0))
        context = engine.context()
        # fresh source: in-progress ROI visible mid-collection
        assert context.roi == (TileKey(2, 0, 0),)
        engine.roi_source = "committed"
        assert engine.context().roi == ()

    def test_reset_clears_state(self):
        model = MomentumRecommender()
        engine = PredictionEngine(
            GRID, {model.name: model}, SingleModelStrategy(model.name)
        )
        engine.observe(None, TileKey(1, 0, 0))
        engine.reset()
        assert engine.history.current is None

    def test_rejects_no_recommenders(self):
        with pytest.raises(ValueError):
            PredictionEngine(GRID, {}, SingleModelStrategy("m"))

    def test_rejects_bad_distance(self):
        model = MomentumRecommender()
        with pytest.raises(ValueError):
            PredictionEngine(
                GRID,
                {model.name: model},
                SingleModelStrategy(model.name),
                prefetch_distance=0,
            )

    def test_prediction_capped_at_k(self):
        model = MomentumRecommender()
        engine = PredictionEngine(
            GRID, {model.name: model}, SingleModelStrategy(model.name)
        )
        engine.observe(None, TileKey(2, 1, 1))
        for k in range(1, 9):
            assert len(engine.predict(k).tiles) <= k
