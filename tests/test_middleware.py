"""Integration-style tests for the middleware server and client."""

import pytest

from repro.cache.manager import CacheManager
from repro.cache.tile_cache import TileCache
from repro.core.allocation import SingleModelStrategy
from repro.core.engine import PredictionEngine
from repro.middleware.client import BrowsingSession
from repro.middleware.latency import (
    HIT_SECONDS,
    LatencyModel,
    LatencyRecorder,
    MISS_SECONDS,
)
from repro.middleware.server import ForeCacheServer
from repro.recommenders.momentum import MomentumRecommender
from repro.tiles.key import TileKey
from repro.tiles.moves import Move


@pytest.fixture
def server(small_dataset):
    model = MomentumRecommender()
    engine = PredictionEngine(
        small_dataset.pyramid.grid,
        {model.name: model},
        SingleModelStrategy(model.name),
    )
    return ForeCacheServer(small_dataset.pyramid, engine, prefetch_k=5)


class TestLatencyModel:
    def test_hit_latency(self):
        assert LatencyModel().response_seconds(True, 0.0) == HIT_SECONDS

    def test_miss_latency_includes_backend(self):
        latency = LatencyModel().response_seconds(False, 0.9645)
        assert latency == pytest.approx(MISS_SECONDS)

    def test_recorder_average(self):
        recorder = LatencyRecorder()
        recorder.record(0.1, True)
        recorder.record(0.3, False)
        assert recorder.average_seconds == pytest.approx(0.2)
        assert recorder.hit_rate == pytest.approx(0.5)

    def test_recorder_merge(self):
        a, b = LatencyRecorder(), LatencyRecorder()
        a.record(0.1, True)
        b.record(0.2, False)
        a.merge(b)
        assert a.count == 2
        assert a.hits == 1


class TestServer:
    def test_first_request_misses(self, server):
        response = server.handle_request(None, TileKey(0, 0, 0))
        assert not response.hit
        assert response.latency_seconds == pytest.approx(MISS_SECONDS, rel=0.05)
        assert len(response.prefetched) == 4  # root has only 4 moves

    def test_predicted_request_hits(self, server):
        first = server.handle_request(None, TileKey(2, 1, 1))
        # Momentum with no history ranks candidates deterministically;
        # follow one of the prefetched tiles.
        target = first.prefetched[0]
        move = TileKey(2, 1, 1).move_to(target)
        response = server.handle_request(move, target)
        assert response.hit
        assert response.latency_seconds == pytest.approx(HIT_SECONDS)

    def test_unpredicted_request_misses(self, server):
        first = server.handle_request(None, TileKey(2, 1, 1))
        candidates = server.pyramid.grid.candidates(TileKey(2, 1, 1))
        not_prefetched = [t for t in candidates if t not in first.prefetched]
        assert not_prefetched
        target = not_prefetched[-1]
        move = TileKey(2, 1, 1).move_to(target)
        response = server.handle_request(move, target)
        assert not response.hit

    def test_prefetch_disabled(self, small_dataset):
        model = MomentumRecommender()
        engine = PredictionEngine(
            small_dataset.pyramid.grid,
            {model.name: model},
            SingleModelStrategy(model.name),
        )
        server = ForeCacheServer(
            small_dataset.pyramid, engine, prefetch_enabled=False
        )
        server.handle_request(None, TileKey(2, 1, 1))
        response = server.handle_request(Move.PAN_RIGHT, TileKey(2, 2, 1))
        assert not response.hit
        assert response.prefetched == ()

    def test_recorder_accumulates(self, server):
        server.handle_request(None, TileKey(1, 0, 0))
        server.handle_request(Move.ZOOM_IN_NW, TileKey(2, 0, 0))
        assert server.recorder.count == 2

    def test_reset_session(self, server):
        server.handle_request(None, TileKey(1, 0, 0))
        server.reset_session()
        assert server.recorder.count == 0
        assert server.engine.history.current is None

    def test_rejects_bad_k(self, small_dataset, server):
        with pytest.raises(ValueError):
            ForeCacheServer(small_dataset.pyramid, server.engine, prefetch_k=0)


class TestBrowsingSession:
    def test_start_at_root(self, server):
        session = BrowsingSession(server)
        response = session.start()
        assert response.tile.key == TileKey(0, 0, 0)
        assert session.current == TileKey(0, 0, 0)

    def test_start_twice_rejected(self, server):
        session = BrowsingSession(server)
        session.start()
        with pytest.raises(RuntimeError):
            session.start()

    def test_move_updates_position(self, server):
        session = BrowsingSession(server)
        session.start()
        response = session.move(Move.ZOOM_IN_SE)
        assert response.tile.key == TileKey(1, 1, 1)
        assert session.current == TileKey(1, 1, 1)

    def test_illegal_move_rejected(self, server):
        session = BrowsingSession(server)
        session.start()
        with pytest.raises(ValueError):
            session.move(Move.ZOOM_OUT)

    def test_move_before_start_rejected(self, server):
        with pytest.raises(RuntimeError):
            BrowsingSession(server).move(Move.PAN_LEFT)

    def test_available_moves(self, server):
        session = BrowsingSession(server)
        assert session.available_moves == []
        session.start()
        assert all(m.is_zoom_in for m in session.available_moves)

    def test_replay_trace(self, server, small_study):
        session = BrowsingSession(server)
        trace = small_study.traces[0]
        responses = session.replay(trace)
        assert len(responses) == len(trace)

    def test_replay_requires_fresh_session(self, server, small_study):
        session = BrowsingSession(server)
        session.start()
        with pytest.raises(RuntimeError):
            session.replay(small_study.traces[0])

    def test_prefetching_reduces_latency(self, small_dataset, small_study):
        """End to end: prefetching must beat no-prefetching on latency."""

        def build_server(enabled: bool) -> ForeCacheServer:
            model = MomentumRecommender()
            engine = PredictionEngine(
                small_dataset.pyramid.grid,
                {model.name: model},
                SingleModelStrategy(model.name),
            )
            return ForeCacheServer(
                small_dataset.pyramid,
                engine,
                cache_manager=CacheManager(small_dataset.pyramid, TileCache()),
                prefetch_k=5,
                prefetch_enabled=enabled,
            )

        trace = max(small_study.traces, key=len)
        with_prefetch = build_server(True)
        BrowsingSession(with_prefetch).replay(trace)
        without_prefetch = build_server(False)
        BrowsingSession(without_prefetch).replay(trace)
        assert (
            with_prefetch.recorder.average_seconds
            < without_prefetch.recorder.average_seconds
        )
