"""The cross-user shared hotspot subsystem: concurrency + determinism.

The contract under test (``repro.core.popularity`` and its wiring
through engine, service, and scheduler):

- the registry's ``snapshot(top_n)`` is a pure function of the multiset
  of observations — any thread interleaving and any shard count yield
  the same top-N, bit for bit;
- decay is monotone on the virtual tick and never drives a count
  negative;
- ``shared_hotspots="off"`` (the default) and ``"observe"`` replay
  traces with output identical to the isolated-prediction serving
  stack; only ``"boost"`` changes behavior — and on convergent
  multi-user traces it must *improve* the cross-user hit rate.
"""

import random
import threading

import pytest

from repro.cache.manager import CacheManager
from repro.cache.tile_cache import TileCache
from repro.core.allocation import SingleModelStrategy
from repro.core.engine import PredictionEngine
from repro.core.popularity import SharedHotspotRegistry
from repro.middleware.config import CacheConfig, PrefetchPolicy, ServiceConfig
from repro.middleware.scheduler import DONE, PrefetchScheduler
from repro.middleware.server import ForeCacheServer
from repro.middleware.service import ForeCacheService
from repro.recommenders.hotspot import HotspotRecommender
from repro.recommenders.momentum import MomentumRecommender
from repro.tiles.key import TileKey
from repro.tiles.pyramid import TilePyramid
from repro.users.convergent import (
    convergent_walks,
    cross_user_hit_rate,
    replay_walks,
)


@pytest.fixture(scope="module")
def pyramid() -> TilePyramid:
    from repro.modis.dataset import MODISDataset

    return MODISDataset.build(size=256, tile_size=32, days=1, seed=3).pyramid


def keys_at(level: int):
    n = 1 << level
    return [TileKey(level, x, y) for y in range(n) for x in range(n)]


def momentum_engine(grid) -> PredictionEngine:
    model = MomentumRecommender()
    return PredictionEngine(
        grid, {model.name: model}, SingleModelStrategy(model.name)
    )


def hotspot_engine_factory(grid, **kwargs):
    def factory() -> PredictionEngine:
        model = HotspotRecommender(**kwargs)
        return PredictionEngine(
            grid, {model.name: model}, SingleModelStrategy(model.name)
        )

    return factory


# ----------------------------------------------------------------------
# registry semantics
# ----------------------------------------------------------------------
class TestRegistryBasics:
    def test_validation(self):
        with pytest.raises(ValueError):
            SharedHotspotRegistry(shards=0)
        with pytest.raises(ValueError):
            SharedHotspotRegistry(decay=0.0)
        with pytest.raises(ValueError):
            SharedHotspotRegistry(decay=1.5)
        registry = SharedHotspotRegistry()
        with pytest.raises(ValueError):
            registry.observe(TileKey(0, 0, 0), weight=0.0)
        with pytest.raises(ValueError):
            registry.advance(-1)
        with pytest.raises(ValueError):
            registry.snapshot(top_n=0)

    def test_counts_accumulate_and_order(self):
        registry = SharedHotspotRegistry()
        a, b = TileKey(1, 0, 0), TileKey(1, 1, 1)
        registry.observe(a)
        registry.observe(b)
        registry.observe(b)
        assert registry.count(b) == 2.0
        assert registry.snapshot() == [(b, 2.0), (a, 1.0)]
        assert registry.hot_keys(1) == [b]
        assert len(registry) == 2
        assert registry.total_observations == 3

    def test_count_ties_break_by_key(self):
        registry = SharedHotspotRegistry()
        high, low = TileKey(2, 3, 3), TileKey(2, 0, 1)
        registry.observe(high)  # insertion order must not matter
        registry.observe(low)
        assert registry.hot_keys(2) == [low, high]

    def test_decay_on_advance(self):
        registry = SharedHotspotRegistry(decay=0.5)
        key = TileKey(0, 0, 0)
        registry.observe(key, 8.0)
        assert registry.count(key) == 8.0
        registry.advance()
        assert registry.count(key) == 4.0
        registry.advance(2)
        assert registry.count(key) == 1.0
        # A new observation lands undecayed on top of the decayed count.
        registry.observe(key)
        assert registry.count(key) == 2.0

    def test_decay_monotone_and_order_preserving(self):
        registry = SharedHotspotRegistry(decay=0.5)
        tiles = keys_at(2)[:6]
        for index, key in enumerate(tiles):
            registry.observe(key, float(2**index))
        previous = dict(registry.snapshot())
        order = [key for key, _ in registry.snapshot()]
        for _ in range(4):
            registry.advance()
            current = dict(registry.snapshot())
            for key, weight in current.items():
                assert 0.0 <= weight < previous[key]
            # Uniform decay never reorders the ranking.
            assert [key for key, _ in registry.snapshot()] == order
            previous = current

    def test_clear(self):
        registry = SharedHotspotRegistry(shards=3, decay=0.5)
        registry.observe(TileKey(1, 0, 1))
        registry.advance(5)
        registry.clear()
        assert registry.snapshot() == []
        assert registry.tick == 0
        assert registry.total_observations == 0

    def test_merge_aligns_ticks(self):
        newer = SharedHotspotRegistry(decay=0.5)
        older = SharedHotspotRegistry(decay=0.5)
        key = TileKey(1, 1, 0)
        older.observe(key, 4.0)  # at tick 0
        newer.advance(2)
        newer.observe(key, 1.0)  # at tick 2
        newer.merge(older)  # older's 4.0 decays two ticks -> 1.0
        assert newer.tick == 2
        assert newer.count(key) == 2.0
        assert newer.total_observations == 2

    def test_merge_rejects_decay_mismatch(self):
        with pytest.raises(ValueError):
            SharedHotspotRegistry(decay=0.5).merge(SharedHotspotRegistry())


# ----------------------------------------------------------------------
# determinism: interleaving and sharding
# ----------------------------------------------------------------------
class TestRegistryDeterminism:
    def _streams(self, num_threads: int = 4, per_thread: int = 200):
        tiles = keys_at(3)
        rng = random.Random(42)
        return [
            [rng.choice(tiles) for _ in range(per_thread)]
            for _ in range(num_threads)
        ]

    def test_concurrent_observation_matches_sequential(self):
        """The hammer: N threads racing on the sharded registry must
        produce the exact snapshot of a sequential replay — the top-N is
        a function of the observation multiset, not the interleaving.
        """
        streams = self._streams()
        sequential = SharedHotspotRegistry(shards=4)
        for stream in streams:
            sequential.observe_many(stream)
        expected = sequential.snapshot()
        assert expected, "scenario must actually observe something"

        for _ in range(3):  # several trials: interleavings vary
            registry = SharedHotspotRegistry(shards=4)
            barrier = threading.Barrier(len(streams))

            def worker(stream):
                barrier.wait()
                for key in stream:
                    registry.observe(key)

            threads = [
                threading.Thread(target=worker, args=(stream,))
                for stream in streams
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert registry.snapshot() == expected
            assert registry.total_observations == sum(
                len(stream) for stream in streams
            )

    def test_observation_order_is_irrelevant(self):
        streams = self._streams(num_threads=1, per_thread=120)
        observations = streams[0]
        forward = SharedHotspotRegistry()
        forward.observe_many(observations)
        backward = SharedHotspotRegistry()
        backward.observe_many(reversed(observations))
        assert forward.snapshot() == backward.snapshot()

    @pytest.mark.parametrize("shards", [2, 3, 8])
    def test_shard_count_invariance(self, shards):
        """shards=1 and shards=N must agree bit-for-bit, including under
        decay: per-key arithmetic is independent of shard membership.
        """
        tiles = keys_at(3)
        rng = random.Random(7)
        baseline = SharedHotspotRegistry(shards=1, decay=0.5)
        sharded = SharedHotspotRegistry(shards=shards, decay=0.5)
        for step in range(400):
            if step % 17 == 0:
                baseline.advance()
                sharded.advance()
            key = rng.choice(tiles)
            weight = float(rng.randint(1, 4))
            baseline.observe(key, weight)
            sharded.observe(key, weight)
        assert baseline.snapshot() == sharded.snapshot()
        assert baseline.snapshot(5) == sharded.snapshot(5)
        probe = tiles[3]
        assert baseline.count(probe) == sharded.count(probe)

    def test_concurrent_snapshot_does_not_crash_or_corrupt(self):
        registry = SharedHotspotRegistry(shards=4)
        tiles = keys_at(2)
        stop = threading.Event()
        errors: list[BaseException] = []

        def reader():
            try:
                while not stop.is_set():
                    for key, weight in registry.snapshot(8):
                        assert weight > 0
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        readers = [threading.Thread(target=reader) for _ in range(2)]
        for thread in readers:
            thread.start()
        for _ in range(50):
            registry.observe_many(tiles)
        stop.set()
        for thread in readers:
            thread.join()
        assert not errors
        assert registry.count(tiles[0]) == 50.0


# ----------------------------------------------------------------------
# scheduler rank boost
# ----------------------------------------------------------------------
class TestSchedulerBoost:
    def test_globally_hot_tile_jumps_the_rank_queue(self, pyramid):
        """With the queue backed up, a rank-5 job for a globally hot
        tile must complete before colder rank-1..4 jobs (its heap rank
        is boosted), while ``PrefetchJob.rank`` still reports the
        model's original opinion.
        """
        manager = CacheManager(pyramid, TileCache(prefetch_capacity=16))
        gate_key = pyramid.grid.root
        started, release = threading.Event(), threading.Event()
        original = manager._query_backend

        def gated(key):
            if key == gate_key:
                started.set()
                assert release.wait(30)
            return original(key)

        manager._query_backend = gated
        registry = SharedHotspotRegistry()
        hot_tile = TileKey(3, 5, 5)
        for _ in range(3):
            registry.observe(hot_tile)
        scheduler = PrefetchScheduler(
            manager,
            max_workers=1,
            hotspot_registry=registry,
            hotspot_top_n=1,
            hotspot_boost=10,
        )
        try:
            scheduler.schedule([(gate_key, "m")], session_id="gate")
            assert started.wait(30)
            round_ = scheduler.schedule(
                [(TileKey(3, x, 0), "m") for x in range(5)]
                + [(hot_tile, "m")],
                session_id="user",
            )
            release.set()
            assert scheduler.wait_idle(30)
            assert all(job.state == DONE for job in round_)
            boosted = round_[-1]
            assert boosted.key == hot_tile and boosted.rank == 5
            rank0 = round_[0]
            cold_tail = [job for job in round_[1:-1]]
            # Boosted to effective rank 0: behind the real rank-0 job
            # (earlier admission seq), ahead of every cold rank>=1 job.
            assert rank0.finish_order < boosted.finish_order
            assert boosted.finish_order < min(
                job.finish_order for job in cold_tail
            )
        finally:
            release.set()
            scheduler.shutdown()

    def test_no_registry_means_no_boost_key_change(self, pyramid):
        manager = CacheManager(pyramid, TileCache(prefetch_capacity=16))
        scheduler = PrefetchScheduler(manager, max_workers=1)
        try:
            jobs = scheduler.schedule(
                [(TileKey(3, x, 1), "m") for x in range(4)], session_id=1
            )
            assert scheduler.wait_idle(30)
            finish = [job.finish_order for job in jobs]
            assert finish == sorted(finish)
        finally:
            scheduler.shutdown()

    def test_boost_params_validated(self, pyramid):
        manager = CacheManager(pyramid, TileCache(prefetch_capacity=4))
        with pytest.raises(ValueError):
            PrefetchScheduler(manager, hotspot_top_n=0)
        with pytest.raises(ValueError):
            PrefetchScheduler(manager, hotspot_boost=-1)


# ----------------------------------------------------------------------
# service wiring
# ----------------------------------------------------------------------
def _service_config(mode: str, k: int = 2) -> ServiceConfig:
    return ServiceConfig(
        prefetch=PrefetchPolicy(k=k, shared_hotspots=mode),
        cache=CacheConfig(recent_capacity=2, prefetch_capacity=k),
    )


class TestServiceWiring:
    def test_off_has_no_registry(self, pyramid):
        with ForeCacheService(pyramid, _service_config("off")) as service:
            assert service.hotspot_registry is None

    def test_registry_with_off_policy_rejected(self, pyramid):
        with pytest.raises(ValueError):
            ForeCacheService(
                pyramid,
                _service_config("off"),
                hotspot_registry=SharedHotspotRegistry(),
            )

    def test_observe_feeds_registry_without_going_live(self, pyramid):
        grid = pyramid.grid
        factory = hotspot_engine_factory(grid, num_hotspots=1, proximity=4)
        with ForeCacheService(
            pyramid, _service_config("observe"), engine_factory=factory
        ) as service:
            handle = service.open_session()
            handle.request(None, grid.root)
            assert service.hotspot_registry.snapshot() == [(grid.root, 1.0)]
            recommender = handle.engine.recommenders["hotspot"]
            assert recommender.registry is None  # collected, not consulted
            assert handle.engine.hotspot_registry is service.hotspot_registry

    def test_boost_binds_live_recommenders(self, pyramid):
        grid = pyramid.grid
        factory = hotspot_engine_factory(grid, num_hotspots=1, proximity=4)
        with ForeCacheService(
            pyramid, _service_config("boost"), engine_factory=factory
        ) as service:
            handle = service.open_session()
            recommender = handle.engine.recommenders["hotspot"]
            assert recommender.registry is service.hotspot_registry

    def test_injected_registry_is_shared_across_services(self, pyramid):
        registry = SharedHotspotRegistry()
        grid = pyramid.grid
        factory = hotspot_engine_factory(grid, num_hotspots=1)
        with ForeCacheService(
            pyramid,
            _service_config("observe"),
            engine_factory=factory,
            hotspot_registry=registry,
        ) as service:
            assert service.hotspot_registry is registry
            service.open_session().request(None, grid.root)
        assert registry.total_observations == 1

    def test_registry_shards_follow_cache_shards(self, pyramid):
        config = ServiceConfig(
            prefetch=PrefetchPolicy(k=2, shared_hotspots="observe"),
            cache=CacheConfig(
                recent_capacity=2, prefetch_capacity=2, shards=4
            ),
        )
        with ForeCacheService(pyramid, config) as service:
            assert service.hotspot_registry.shards == 4

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            PrefetchPolicy(shared_hotspots="sometimes")
        with pytest.raises(ValueError):
            PrefetchPolicy(hotspot_decay=0.0)
        with pytest.raises(ValueError):
            PrefetchPolicy(hotspot_top_n=0)
        with pytest.raises(ValueError):
            PrefetchPolicy(hotspot_boost=-1)
        with pytest.raises(ValueError):
            PrefetchPolicy(hotspot_tick_every=-1)
        assert PrefetchPolicy(shared_hotspots="boost").hotspots_live
        assert PrefetchPolicy(shared_hotspots="observe").shares_hotspots
        assert not PrefetchPolicy().shares_hotspots

    def test_close_unbinds_engine_from_service_registry(self, pyramid):
        """A departing engine must stop feeding (and predicting from)
        the service's registry — reusing it under a later "off" service
        must not keep the stale signal alive.
        """
        grid = pyramid.grid
        factory = hotspot_engine_factory(grid, num_hotspots=1, proximity=4)
        with ForeCacheService(
            pyramid, _service_config("boost"), engine_factory=factory
        ) as boost_service:
            handle = boost_service.open_session()
            handle.request(None, grid.root)
            engine = handle.engine
            registry = boost_service.hotspot_registry
            handle.close()
            assert engine.hotspot_registry is None
            assert engine.recommenders["hotspot"].registry is None
        before = registry.total_observations
        with ForeCacheService(pyramid, _service_config("off")) as off_service:
            off_handle = off_service.open_session(engine)
            off_handle.request(None, grid.root)
        assert registry.total_observations == before

    def test_service_close_unbinds_open_sessions(self, pyramid):
        grid = pyramid.grid
        factory = hotspot_engine_factory(grid, num_hotspots=1)
        service = ForeCacheService(
            pyramid, _service_config("observe"), engine_factory=factory
        )
        handle = service.open_session()
        engine = handle.engine
        service.close()
        assert engine.hotspot_registry is None

    def test_close_leaves_foreign_bindings_alone(self, pyramid):
        """An engine the caller bound to their *own* registry keeps it."""
        grid = pyramid.grid
        mine = SharedHotspotRegistry()
        engine = momentum_engine(grid)
        engine.bind_hotspot_registry(mine)
        with ForeCacheService(pyramid, _service_config("off")) as service:
            with service.open_session(engine) as handle:
                handle.request(None, grid.root)
        assert engine.hotspot_registry is mine
        assert mine.total_observations == 1

    def test_tick_every_drives_decay(self, pyramid):
        grid = pyramid.grid
        config = ServiceConfig(
            prefetch=PrefetchPolicy(
                k=2,
                shared_hotspots="observe",
                hotspot_decay=0.5,
                hotspot_tick_every=2,
            ),
            cache=CacheConfig(recent_capacity=2, prefetch_capacity=2),
        )
        with ForeCacheService(
            pyramid, config, engine_factory=lambda: momentum_engine(grid)
        ) as service:
            handle = service.open_session()
            root = grid.root
            child = root.children()[0]
            # 4 requests with tick_every=2 -> 2 ticks, at known points.
            handle.request(None, root)                     # root @ tick 0
            handle.request(root.move_to(child), child)     # tick -> 1
            handle.request(child.move_to(root), root)      # root @ tick 1
            handle.request(root.move_to(child), child)     # tick -> 2
            registry = service.hotspot_registry
            assert registry.tick == 2
            # root: (1 halved to tick 1, +1) halved again at tick 2.
            assert registry.count(root) == 0.75


# ----------------------------------------------------------------------
# end to end: "off" is bit-identical, "boost" helps convergent users
# ----------------------------------------------------------------------
def _seeded_walk(grid, steps: int = 40, seed: int = 11):
    rng = random.Random(seed)
    key = grid.root
    walk = [(None, key)]
    for _ in range(steps):
        move, key = rng.choice(grid.available_moves(key))
        walk.append((move, key))
    return walk


class TestEndToEnd:
    def test_off_and_observe_replay_identical_to_isolated_stack(
        self, pyramid
    ):
        """``shared_hotspots="off"`` (the default) and ``"observe"``
        must replay a trace with output identical to the pre-registry
        serving stack (the legacy adapter with PR-4 defaults).
        """
        grid = pyramid.grid
        walk = _seeded_walk(grid)

        legacy = ForeCacheServer(
            pyramid,
            momentum_engine(grid),
            prefetch_k=2,
            cache_manager=CacheManager(
                pyramid, TileCache(recent_capacity=2, prefetch_capacity=2)
            ),
        )
        with legacy:
            for move, key in walk:
                legacy.handle_request(move, key)
        baseline = legacy.recorder.to_dict()

        for mode in ("off", "observe"):
            with ForeCacheService(pyramid, _service_config(mode)) as service:
                handle = service.open_session(momentum_engine(grid))
                for move, key in walk:
                    handle.request(move, key)
                assert handle.recorder.to_dict() == baseline, mode
                if mode == "observe":
                    registry = service.hotspot_registry
                    assert registry.total_observations == len(walk)

    def test_default_config_has_sharing_off(self):
        assert ServiceConfig().prefetch.shared_hotspots == "off"

    def test_boost_beats_off_on_convergent_traces(self, pyramid):
        """The headline: on convergent multi-user walks, cross-user
        (users 2..N) prefetch hit rate under live sharing must strictly
        exceed the isolated baseline — later users get hits predicted
        from other users' behavior.
        """
        grid = pyramid.grid
        walks = convergent_walks(grid, num_users=3)
        rates = {}
        for mode in ("off", "boost"):
            config = ServiceConfig(
                prefetch=PrefetchPolicy(k=1, shared_hotspots=mode),
                cache=CacheConfig(recent_capacity=1, prefetch_capacity=1),
            )
            factory = hotspot_engine_factory(
                grid, num_hotspots=1, proximity=4
            )
            with ForeCacheService(
                pyramid, config, engine_factory=factory
            ) as service:
                recorders = replay_walks(service, walks)
            rates[mode] = cross_user_hit_rate(recorders)
        assert rates["boost"] > rates["off"]

    def test_convergent_replay_is_deterministic(self, pyramid):
        grid = pyramid.grid
        walks = convergent_walks(grid, num_users=3)

        def run():
            config = ServiceConfig(
                prefetch=PrefetchPolicy(k=1, shared_hotspots="boost"),
                cache=CacheConfig(recent_capacity=1, prefetch_capacity=1),
            )
            factory = hotspot_engine_factory(
                grid, num_hotspots=1, proximity=4
            )
            with ForeCacheService(
                pyramid, config, engine_factory=factory
            ) as service:
                return [
                    recorder.to_dict()
                    for recorder in replay_walks(service, walks)
                ]

        assert run() == run()

    def test_concurrent_boost_sessions_stay_healthy(self, pyramid):
        """Threaded sessions under "boost": no deadlock between the
        registry's shard locks and the session/scheduler locks, every
        request answered, registry totals exact.
        """
        grid = pyramid.grid
        num_users, steps = 4, 25
        config = ServiceConfig(
            prefetch=PrefetchPolicy(
                k=4,
                mode="background",
                workers=2,
                shared_hotspots="boost",
            ),
            cache=CacheConfig(
                recent_capacity=8, prefetch_capacity=8, shards=4
            ),
        )
        factory = hotspot_engine_factory(grid, num_hotspots=4, proximity=4)
        errors: list[BaseException] = []
        with ForeCacheService(
            pyramid, config, engine_factory=factory
        ) as service:
            handles = [
                service.open_session(session_id=f"user-{i}")
                for i in range(num_users)
            ]

            def drive(index: int) -> None:
                try:
                    rng = random.Random(500 + index)
                    key = grid.root
                    handles[index].request(None, key)
                    for _ in range(steps):
                        move, key = rng.choice(grid.available_moves(key))
                        handles[index].request(move, key)
                except BaseException as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [
                threading.Thread(target=drive, args=(i,))
                for i in range(num_users)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not errors
            assert service.drain(timeout=30)
            registry = service.hotspot_registry
            assert registry.total_observations == num_users * (steps + 1)
            assert sum(
                recorder.count for recorder in
                (handle.recorder for handle in handles)
            ) == num_users * (steps + 1)


class TestSubEpsilonPruning:
    """``prune_epsilon`` bounds memory without changing the top-N."""

    def test_validation(self):
        with pytest.raises(ValueError):
            SharedHotspotRegistry(prune_epsilon=-0.1)
        registry = SharedHotspotRegistry()
        with pytest.raises(ValueError):
            registry.prune(epsilon=-1.0)

    def test_policy_knob_validated_and_threaded(self):
        with pytest.raises(ValueError):
            PrefetchPolicy(hotspot_prune_epsilon=-1e-9)
        policy = PrefetchPolicy(
            shared_hotspots="observe",
            hotspot_decay=0.5,
            hotspot_prune_epsilon=1e-3,
        )
        service = ForeCacheService(
            _small_pyramid(), ServiceConfig(prefetch=policy)
        )
        try:
            assert service.hotspot_registry.prune_epsilon == 1e-3
        finally:
            service.close()

    def test_snapshot_sweeps_dead_entries(self):
        registry = SharedHotspotRegistry(decay=0.5, prune_epsilon=0.05)
        cold = keys_at(2)[:8]
        for key in cold:
            registry.observe(key)
        hot = TileKey(0, 0, 0)
        registry.observe(hot, weight=100.0)
        assert len(registry) == 9
        # After 6 ticks every cold count is 1 * 0.5**6 ~ 0.0156 < 0.05.
        registry.advance(6)
        top = registry.snapshot()
        assert [key for key, _ in top] == [hot]
        # The snapshot's lazy sweep dropped the dead counters for real.
        assert len(registry) == 1

    def test_count_prunes_dead_key(self):
        registry = SharedHotspotRegistry(decay=0.5, prune_epsilon=0.1)
        key = TileKey(1, 0, 1)
        registry.observe(key)
        registry.advance(5)
        assert registry.count(key) == 0.0
        assert len(registry) == 0

    def test_observe_restarts_subepsilon_count_from_scratch(self):
        registry = SharedHotspotRegistry(decay=0.5, prune_epsilon=0.1)
        key = TileKey(1, 1, 0)
        registry.observe(key)
        registry.advance(10)  # decayed ~ 0.00098 << 0.1
        # Re-observing must behave exactly as if the key was dropped:
        # the new count is the fresh weight, not fresh + dust.
        assert registry.observe(key) == 1.0

    def test_explicit_prune_returns_removed_count(self):
        registry = SharedHotspotRegistry(decay=0.5, prune_epsilon=0.05)
        for key in keys_at(2)[:10]:
            registry.observe(key)
        survivor = TileKey(0, 0, 0)
        registry.observe(survivor, weight=64.0)
        registry.advance(6)
        removed = registry.prune()
        assert removed == 10
        assert len(registry) == 1
        assert registry.prune() == 0

    def test_prune_with_explicit_epsilon_overrides_default(self):
        registry = SharedHotspotRegistry(decay=0.5)  # no default pruning
        for key in keys_at(1):
            registry.observe(key)
        registry.advance(4)
        assert registry.prune() == 0  # default epsilon 0.0 keeps all
        assert registry.prune(epsilon=0.125) == len(keys_at(1))

    def test_pruned_snapshot_is_shard_invariant(self):
        """Determinism: the pruned snapshot is a pure function of the
        observation sequence — the shard count never changes it."""
        snapshots = []
        for shards in (1, 2, 4):
            registry = SharedHotspotRegistry(
                shards=shards, decay=0.6, prune_epsilon=0.03
            )
            rng = random.Random(99)
            keys = keys_at(3)
            for step in range(400):
                registry.observe(rng.choice(keys))
                if step % 25 == 24:
                    registry.advance()
            snapshots.append(registry.snapshot())
        assert snapshots[0] == snapshots[1] == snapshots[2]

    def test_pruning_only_sheds_subepsilon_dust(self):
        """Approximation: vs. an unpruned reference, pruning loses at
        most the sub-epsilon dust a restart drops — never a hot count."""
        epsilon = 0.03
        pruned = SharedHotspotRegistry(decay=0.6, prune_epsilon=epsilon)
        reference = SharedHotspotRegistry(decay=0.6)
        rng = random.Random(99)
        keys = keys_at(3)
        for step in range(400):
            key = rng.choice(keys)
            pruned.observe(key)
            reference.observe(key)
            if step % 25 == 24:
                pruned.advance()
                reference.advance()
        ref = dict(reference.snapshot())
        pr = dict(pruned.snapshot())
        assert set(pr) <= set(ref)
        # Every surviving count is within one epsilon of the reference.
        assert all(0 <= ref[key] - pr[key] < epsilon for key in pr)
        # Nothing that still matters was lost.
        assert all(key in pr for key, count in ref.items() if count >= 1.0)
        assert pruned.hot_keys(1) == reference.hot_keys(1)

    def test_memory_bounded_under_adversarial_sweep(self):
        """A random walk over many tiles cannot grow the registry
        without bound when decay + pruning are on."""
        registry = SharedHotspotRegistry(decay=0.5, prune_epsilon=0.01)
        keys = keys_at(4)  # 256 distinct tiles
        rng = random.Random(7)
        high_water = 0
        for step in range(2000):
            registry.observe(rng.choice(keys))
            if step % 10 == 9:
                registry.advance()
            if step % 50 == 49:
                registry.snapshot()  # the sweep that enforces the bound
                high_water = max(high_water, len(registry))
        # 0.5-decay with a tick every 10 observations keeps only a few
        # recent epochs alive: ~10 fresh keys per epoch, 7 epochs to
        # decay 1.0 below 0.01.
        assert high_water < 120
        unbounded = SharedHotspotRegistry(decay=0.5)
        rng = random.Random(7)
        for step in range(2000):
            unbounded.observe(rng.choice(keys))
            if step % 10 == 9:
                unbounded.advance()
        assert len(unbounded) == len(keys)  # what pruning prevents


def _small_pyramid():
    from repro.modis.dataset import MODISDataset

    return MODISDataset.build(size=64, tile_size=8, days=1, seed=3).pyramid
