"""Continuous push prefetch: scheduler, cache, wire, and lifecycle.

The unit half exercises the two pure state machines —
:class:`~repro.middleware.push.PushScheduler` (budget fairness, ack
dedup, generation cancellation, in-flight caps) and
:class:`~repro.middleware.push.PushCache` (LRU, digest) — with no
sockets involved.  The end-to-end half drives the real TCP stack:
negotiated capability, pushed tiles answering locally, a tile never
streamed twice while held, cancellation on a new request, a mid-push
client disconnect leaving the service healthy, and the wall-clock
hotspot decay ticker on a fake clock.  The hypothesis fuzz interleaves
push and reply frames through the client's decoder to prove absorption
never misparies request/reply.
"""

from __future__ import annotations

import asyncio
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.allocation import SingleModelStrategy
from repro.core.engine import PredictionEngine
from repro.core.popularity import SharedHotspotRegistry
from repro.middleware import protocol
from repro.middleware.config import CacheConfig, PrefetchPolicy, ServiceConfig
from repro.middleware.net import (
    AsyncSocketTransport,
    HotspotDecayTicker,
    SocketTransport,
    ThreadedSocketServer,
)
from repro.middleware.protocol import (
    FrameDecoder,
    Hello,
    InvalidRequestError,
    PushAck,
    PushTile,
    TilePayload,
    TileRef,
    Welcome,
    encode_frame,
)
from repro.middleware.push import PushCache, PushScheduler
from repro.recommenders.hotspot import HotspotRecommender
from repro.recommenders.momentum import MomentumRecommender
from repro.tiles.key import TileKey
from repro.tiles.moves import Move

PUSH_CONFIG = ServiceConfig(
    prefetch=PrefetchPolicy(k=4, push="on"),
    cache=CacheConfig(recent_capacity=4, prefetch_capacity=8),
)


def make_engine(grid) -> PredictionEngine:
    model = MomentumRecommender()
    return PredictionEngine(
        grid, {model.name: model}, SingleModelStrategy(model.name)
    )


def engine_factory(pyramid):
    return lambda: make_engine(pyramid.grid)


def key(level: int, x: int, y: int) -> TileKey:
    return TileKey(level, x, y)


# ----------------------------------------------------------------------
# PushCache units
# ----------------------------------------------------------------------
class TestPushCache:
    def tile(self, dataset, k: TileKey):
        return dataset.pyramid.fetch_tile(k, charge=False)

    def test_put_get_promote_and_digest(self, small_dataset):
        cache = PushCache(capacity=2)
        a, b = key(1, 0, 0), key(1, 1, 0)
        cache.put(self.tile(small_dataset, a))
        cache.put(self.tile(small_dataset, b))
        assert cache.digest() == sorted([a, b])
        assert cache.get(a).key == a  # promotes a over b
        cache.put(self.tile(small_dataset, key(1, 0, 1)))
        assert b not in cache  # LRU: b was least recently useful
        assert a in cache
        assert cache.evicted == 1

    def test_miss_and_hit_rate(self, small_dataset):
        cache = PushCache(capacity=2)
        assert cache.get(key(0, 0, 0)) is None
        cache.put(self.tile(small_dataset, key(0, 0, 0)))
        assert cache.get(key(0, 0, 0)) is not None
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            PushCache(capacity=0)

    def test_clear(self, small_dataset):
        cache = PushCache()
        cache.put(self.tile(small_dataset, key(0, 0, 0)))
        cache.clear()
        assert len(cache) == 0 and cache.digest() == []

    def test_put_upgrades_in_place_and_ignores_downgrades(
        self, small_dataset
    ):
        cache = PushCache(capacity=4)
        k = key(1, 0, 0)
        coarse = self.tile(small_dataset, k)
        full = self.tile(small_dataset, k)
        cache.put(coarse, fidelity=0.25)
        assert cache.fidelity(k) == 0.25
        assert cache.get(k) is coarse
        # The refinement replaces the held tile in place.
        cache.put(full, fidelity=1.0)
        assert cache.upgraded == 1
        assert cache.fidelity(k) == 1.0
        assert cache.get(k) is full
        assert len(cache) == 1  # an upgrade is not a second entry
        # A stale coarse frame must never clobber the full tile.
        cache.put(coarse, fidelity=0.25)
        assert cache.downgrades_ignored == 1
        assert cache.get(k) is full
        assert cache.fidelity(k) == 1.0

    def test_eviction_forgets_fidelity(self, small_dataset):
        cache = PushCache(capacity=1)
        a, b = key(1, 0, 0), key(1, 1, 0)
        cache.put(self.tile(small_dataset, a), fidelity=0.25)
        cache.put(self.tile(small_dataset, b))
        assert a not in cache
        # Unheld keys report full fidelity (nothing to refine).
        assert cache.fidelity(a) == 1.0


# ----------------------------------------------------------------------
# PushScheduler units
# ----------------------------------------------------------------------
def predictions(*keys: TileKey) -> list[tuple[TileKey, str]]:
    return [(k, "momentum") for k in keys]


class TestPushScheduler:
    def test_validation(self):
        with pytest.raises(ValueError):
            PushScheduler(budget_bytes=0, max_inflight=1)
        with pytest.raises(ValueError):
            PushScheduler(budget_bytes=1024, max_inflight=0)
        with pytest.raises(ValueError):
            PushScheduler(budget_bytes=1024, max_inflight=1, utility="nope")

    def test_begin_round_requires_registration(self):
        scheduler = PushScheduler(budget_bytes=1024, max_inflight=2)
        with pytest.raises(KeyError):
            scheduler.begin_round("ghost", predictions(key(0, 0, 0)))

    def test_budget_is_split_fairly_across_sessions(self):
        scheduler = PushScheduler(budget_bytes=9000, max_inflight=8)
        scheduler.open_session("a")
        assert scheduler.allowance_bytes() == 9000
        scheduler.open_session("b")
        scheduler.open_session("c")
        assert scheduler.allowance_bytes() == 3000
        # One session cannot stream past its fair share in one round.
        scheduler.begin_round(
            "a", predictions(key(1, 0, 0), key(1, 1, 0), key(1, 0, 1))
        )
        streamed = 0
        while (job := scheduler.next_job("a")) is not None:
            if not scheduler.commit(job, 1400):
                break
            streamed += 1
        assert streamed == 2  # 3 x 1400 > 3000, 2 x 1400 fits
        assert scheduler.deferred_jobs == 1
        # The other sessions' allowance is unaffected by a's spending.
        assert scheduler.allowance_bytes() == 3000

    def test_max_inflight_caps_unacked_tiles(self):
        scheduler = PushScheduler(budget_bytes=10**6, max_inflight=2)
        scheduler.open_session("a")
        scheduler.begin_round(
            "a",
            predictions(key(1, 0, 0), key(1, 1, 0), key(1, 0, 1), key(1, 1, 1)),
        )
        sent = []
        while (job := scheduler.next_job("a")) is not None:
            assert scheduler.commit(job, 100)
            sent.append(job.key)
        assert len(sent) == 2
        assert scheduler.inflight_tiles("a") == 2
        # An ack confirming both frees the cap for the next round.
        scheduler.acknowledge("a", sent)
        assert scheduler.inflight_tiles("a") == 0

    def test_ack_dedup_held_and_inflight_never_requeued(self):
        scheduler = PushScheduler(budget_bytes=10**6, max_inflight=4)
        scheduler.open_session("a")
        held = [key(1, 0, 0)]
        scheduler.acknowledge("a", held)
        scheduler.begin_round("a", predictions(key(1, 0, 0), key(1, 1, 0)))
        job = scheduler.next_job("a")
        assert job.key == key(1, 1, 0)  # the held tile was deduped
        assert scheduler.deduped_jobs == 1
        assert scheduler.commit(job, 100)
        # Still unacked -> deduped again next round.
        scheduler.begin_round("a", predictions(key(1, 1, 0)))
        assert scheduler.next_job("a") is None
        assert scheduler.deduped_jobs == 2

    def test_eviction_makes_a_tile_pushable_again(self):
        scheduler = PushScheduler(budget_bytes=10**6, max_inflight=4)
        scheduler.open_session("a")
        scheduler.acknowledge("a", [key(1, 0, 0)])
        # The digest is authoritative: an ack *without* the tile means
        # the client evicted it, so it may be streamed again.
        scheduler.acknowledge("a", [])
        scheduler.begin_round("a", predictions(key(1, 0, 0)))
        assert scheduler.next_job("a").key == key(1, 0, 0)

    def test_new_round_cancels_what_the_old_round_queued(self):
        scheduler = PushScheduler(budget_bytes=10**6, max_inflight=4)
        scheduler.open_session("a")
        scheduler.begin_round("a", predictions(key(1, 0, 0), key(1, 1, 0)))
        generation = scheduler.generation("a")
        assert scheduler.queued_jobs("a") == 2
        scheduler.begin_round("a", predictions(key(1, 0, 1)))
        assert scheduler.generation("a") == generation + 1
        assert scheduler.cancelled_jobs == 2
        assert scheduler.queued_jobs("a") == 1

    def test_forget_session_counts_leftovers_and_is_idempotent(self):
        scheduler = PushScheduler(budget_bytes=10**6, max_inflight=4)
        scheduler.open_session("a")
        scheduler.begin_round("a", predictions(key(1, 0, 0)))
        scheduler.forget_session("a")
        assert scheduler.cancelled_jobs == 1
        assert not scheduler.has_session("a")
        scheduler.forget_session("a")  # idempotent
        assert scheduler.session_count == 0

    def test_rank_utility_orders_by_confidence_decay(self):
        scheduler = PushScheduler(
            budget_bytes=10**6, max_inflight=8, confidence_decay=0.5
        )
        scheduler.open_session("a")
        scheduler.begin_round(
            "a", predictions(key(1, 0, 0), key(1, 1, 0), key(1, 0, 1))
        )
        jobs = []
        while (job := scheduler.next_job("a")) is not None:
            jobs.append(job)
            scheduler.commit(job, 10)
        assert [j.rank for j in jobs] == [0, 1, 2]
        assert [j.utility for j in jobs] == [1.0, 0.5, 0.25]

    def test_hotspot_boost_reorders_jobs(self):
        registry = SharedHotspotRegistry()
        for _ in range(5):
            registry.observe(key(1, 1, 0))
        scheduler = PushScheduler(
            budget_bytes=10**6,
            max_inflight=8,
            hotspot_registry=registry,
            hotspot_boost=9.0,
        )
        scheduler.open_session("a")
        scheduler.begin_round("a", predictions(key(1, 0, 0), key(1, 1, 0)))
        # Rank 1 is globally hot: 0.8 * 10 = 8.0 > 1.0, so it leads.
        assert scheduler.next_job("a").key == key(1, 1, 0)

    def test_density_utility_prefers_cheap_levels(self):
        scheduler = PushScheduler(
            budget_bytes=10**6, max_inflight=8, utility="density"
        )
        scheduler.open_session("a")
        # Teach the cost model: level 1 tiles are 10x level 2 tiles.
        scheduler.begin_round("a", predictions(key(1, 0, 0), key(2, 0, 0)))
        scheduler.commit(scheduler.next_job("a"), 10_000)  # level-1 cost
        scheduler.commit(scheduler.next_job("a"), 1_000)  # level-2 cost
        scheduler.acknowledge("a", [])
        scheduler.begin_round("a", predictions(key(1, 1, 0), key(2, 1, 0)))
        # Same confidence gap (1.0 vs 0.8) but 10x cost gap: the cheap
        # level-2 tile wins under density scoring.
        assert scheduler.next_job("a").key == key(2, 1, 0)

    def test_stats_snapshot(self):
        scheduler = PushScheduler(budget_bytes=1024, max_inflight=1)
        scheduler.open_session("a")
        stats = scheduler.stats()
        assert stats["sessions"] == 1 and stats["rounds"] == 0

    def test_mid_round_join_does_not_move_the_round_budget(self):
        # Regression: commit used to recompute the fair share live, so a
        # session joining mid-round silently shrank what an in-progress
        # round could still stream.  The round must charge the allowance
        # snapshotted at begin_round.
        scheduler = PushScheduler(budget_bytes=3000, max_inflight=8)
        scheduler.open_session("a")
        scheduler.begin_round(
            "a", predictions(key(1, 0, 0), key(1, 1, 0), key(1, 0, 1))
        )
        assert scheduler.commit(scheduler.next_job("a"), 1000)
        scheduler.open_session("b")  # live share drops to 1500 ...
        assert scheduler.allowance_bytes() == 1500
        # ... but a's round keeps its 3000-byte snapshot.
        assert scheduler.commit(scheduler.next_job("a"), 1000)
        assert scheduler.commit(scheduler.next_job("a"), 1000)
        assert scheduler.deferred_jobs == 0
        # The *next* round is granted the new, smaller share.
        scheduler.acknowledge("a", [])
        scheduler.begin_round("a", predictions(key(2, 0, 0)))
        assert not scheduler.commit(scheduler.next_job("a"), 1600)

    def test_oversized_frame_is_skipped_not_requeued(self):
        # A frame larger than the whole fair share can never pass
        # commit; the old behavior deferred it every round forever.
        scheduler = PushScheduler(budget_bytes=1000, max_inflight=8)
        scheduler.open_session("a")
        scheduler.begin_round("a", predictions(key(1, 0, 0), key(1, 1, 0)))
        giant = scheduler.next_job("a")
        assert scheduler.skip_oversize(giant, 5000)
        assert scheduler.skipped_oversize == 1
        # The next job still fits and streams normally.
        job = scheduler.next_job("a")
        assert not scheduler.skip_oversize(job, 400)
        assert scheduler.commit(job, 400)
        assert scheduler.stats()["skipped_oversize"] == 1
        assert scheduler.pushed_tiles == 1

    def test_skip_oversize_for_a_forgotten_session(self):
        scheduler = PushScheduler(budget_bytes=1000, max_inflight=8)
        scheduler.open_session("a")
        scheduler.begin_round("a", predictions(key(1, 0, 0)))
        job = scheduler.next_job("a")
        scheduler.forget_session("a")
        assert scheduler.skip_oversize(job, 10)  # nowhere to stream it

    def test_density_cold_start_is_pure_confidence_order(self):
        # Regression: with no committed frames the per-level cost table
        # is empty; the estimate must degenerate to a uniform unit cost
        # (pure confidence order), not invent level preferences or
        # divide by zero.
        scheduler = PushScheduler(
            budget_bytes=10**6, max_inflight=8, utility="density"
        )
        scheduler.open_session("a")
        scheduler.begin_round(
            "a", predictions(key(2, 0, 0), key(1, 0, 0), key(3, 0, 0))
        )
        jobs = []
        while (job := scheduler.next_job("a")) is not None:
            jobs.append(job)
            scheduler.commit(job, 100)
        assert [j.rank for j in jobs] == [0, 1, 2]
        assert jobs[0].utility == pytest.approx(1.0)
        assert jobs[1].utility == pytest.approx(0.8)

    def test_density_unseen_level_borrows_the_global_mean(self):
        # Once any level has real observations, an unseen level must be
        # priced at the observed byte scale — not at the unit cold-start
        # cost, which would make it look thousands of times cheaper.
        scheduler = PushScheduler(
            budget_bytes=10**7, max_inflight=8, utility="density"
        )
        scheduler.open_session("a")
        scheduler.begin_round("a", predictions(key(1, 0, 0)))
        scheduler.commit(scheduler.next_job("a"), 10_000)
        scheduler.acknowledge("a", [])
        # Level 3 has never been seen; rank order must still hold (the
        # borrowed mean equals level 1's cost, so confidence decides).
        scheduler.begin_round(
            "a", predictions(key(1, 1, 0), key(3, 0, 0))
        )
        first = scheduler.next_job("a")
        assert first.key == key(1, 1, 0)
        assert first.utility == pytest.approx(1.0 / 10_000)


class TestProgressivePushScheduler:
    def scheduler(self, budget: int = 10**6) -> PushScheduler:
        scheduler = PushScheduler(
            budget_bytes=budget,
            max_inflight=8,
            progressive=True,
            reduction=4,
        )
        scheduler.open_session("a")
        return scheduler

    def test_round_queues_coarse_phase_before_refinements(self):
        scheduler = self.scheduler()
        queued = scheduler.begin_round(
            "a", predictions(key(1, 0, 0), key(1, 1, 0))
        )
        assert queued == 4  # two coarse + two refinements
        jobs = []
        while (job := scheduler.next_job("a")) is not None:
            jobs.append(job)
            scheduler.commit(job, 100)
        # Every predicted tile streams coarse before *any* refinement.
        assert [j.fidelity for j in jobs] == [0.25, 0.25, 1.0, 1.0]
        assert [j.key for j in jobs[:2]] == [j.key for j in jobs[2:]]
        assert scheduler.coarse_tiles == 2
        assert scheduler.refined_tiles == 2

    def test_budget_exhaustion_leaves_tiles_coarse(self):
        scheduler = self.scheduler(budget=250)
        scheduler.begin_round("a", predictions(key(1, 0, 0), key(1, 1, 0)))
        streamed = []
        while (job := scheduler.next_job("a")) is not None:
            if not scheduler.commit(job, 100):
                break
            streamed.append(job)
        # Both coarse frames fit; no refinement does.
        assert [j.fidelity for j in streamed] == [0.25, 0.25]
        assert scheduler.coarse_tiles == 2 and scheduler.refined_tiles == 0

    def test_coarse_held_tile_requeues_refinement_not_dedup(self):
        scheduler = self.scheduler(budget=250)
        k = key(1, 0, 0)
        scheduler.begin_round("a", predictions(k))
        assert scheduler.commit(scheduler.next_job("a"), 100)  # coarse out
        # The client acks holding the (coarse) tile.
        scheduler.acknowledge("a", [k])
        # Same prediction next round: the plain dedup would swallow the
        # upgrade — a refinement-only job must be queued instead.
        scheduler.begin_round("a", predictions(k))
        job = scheduler.next_job("a")
        assert job is not None and job.fidelity == 1.0 and job.key == k
        assert scheduler.commit(job, 100)
        assert scheduler.refined_tiles == 1
        # Fully refined and held: now the dedup applies.
        scheduler.acknowledge("a", [k])
        scheduler.begin_round("a", predictions(k))
        assert scheduler.next_job("a") is None
        assert scheduler.deduped_jobs == 1

    def test_new_round_cancels_queued_refinements(self):
        scheduler = self.scheduler(budget=250)
        scheduler.begin_round("a", predictions(key(1, 0, 0)))
        assert scheduler.commit(scheduler.next_job("a"), 100)
        assert scheduler.queued_jobs("a") == 1  # the refinement, waiting
        scheduler.begin_round("a", predictions(key(2, 0, 0)))
        assert scheduler.cancelled_jobs == 1

    def test_refinement_streams_past_the_inflight_cap(self):
        # A refinement re-uses its tile's unacked slot, so it must not
        # deadlock behind max_inflight.
        scheduler = PushScheduler(
            budget_bytes=10**6,
            max_inflight=1,
            progressive=True,
            reduction=4,
        )
        scheduler.open_session("a")
        scheduler.begin_round("a", predictions(key(1, 0, 0)))
        coarse = scheduler.next_job("a")
        assert coarse.fidelity == 0.25
        assert scheduler.commit(coarse, 100)
        refine = scheduler.next_job("a")  # cap is full, same key passes
        assert refine is not None and refine.fidelity == 1.0
        assert scheduler.commit(refine, 400)
        assert scheduler.inflight_tiles("a") == 1

    def test_client_eviction_clears_coarse_tracking(self):
        scheduler = self.scheduler(budget=250)
        k = key(1, 0, 0)
        scheduler.begin_round("a", predictions(k))
        assert scheduler.commit(scheduler.next_job("a"), 100)
        # Digest without the tile: the client evicted the coarse copy.
        scheduler.acknowledge("a", [])
        scheduler.begin_round("a", predictions(k))
        # Fresh push again (coarse first), not a refinement of nothing.
        job = scheduler.next_job("a")
        assert job.fidelity == 0.25

    def test_reduction_validation(self):
        with pytest.raises(ValueError, match="power of two"):
            PushScheduler(budget_bytes=1024, max_inflight=1, reduction=3)


# ----------------------------------------------------------------------
# protocol envelope
# ----------------------------------------------------------------------
class TestPushProtocol:
    def test_push_tile_round_trip(self, small_dataset):
        tile = small_dataset.pyramid.fetch_tile(key(1, 0, 0), charge=False)
        message = PushTile(
            session_id="s",
            tile=TileRef.from_key(tile.key),
            rank=2,
            generation=7,
            utility=0.64,
            payload=TilePayload.from_tile(tile),
        )
        decoded = protocol.decode(protocol.encode(message))
        assert decoded == message
        assert decoded.payload.to_tile().key == tile.key

    def test_push_ack_round_trip(self):
        message = PushAck(
            session_id="s",
            held=(TileRef.from_key(key(1, 0, 0)),),
            move=Move.PAN_RIGHT.value,
            tile=TileRef.from_key(key(1, 1, 0)),
        )
        assert protocol.decode(protocol.encode(message)) == message
        assert message.to_move() is Move.PAN_RIGHT

    def test_hello_welcome_negotiate_push(self):
        hello = protocol.decode(
            protocol.encode(Hello(versions=(1,), push=True))
        )
        assert hello.push is True
        # Legacy peers omit the field entirely; it defaults off.
        legacy = protocol.decode('{"type": "hello", "versions": [1]}')
        assert legacy.push is False
        welcome = protocol.decode(
            protocol.encode(Welcome(version=1, server="s", push=True))
        )
        assert welcome.push is True


# ----------------------------------------------------------------------
# end-to-end over real sockets
# ----------------------------------------------------------------------
def push_walk(start: TileKey, moves: list[Move]) -> list:
    walk = [(None, start)]
    current = start
    for move in moves:
        current = current.apply(move)
        walk.append((move, current))
    return walk


PAN_WALK = push_walk(
    TileKey(3, 0, 1), [Move.PAN_RIGHT] * 4 + [Move.PAN_DOWN] * 2
)


@pytest.fixture
def push_server(small_dataset):
    with ThreadedSocketServer(
        small_dataset.pyramid,
        PUSH_CONFIG,
        engine_factory=engine_factory(small_dataset.pyramid),
    ) as server:
        yield server


class TestPushEndToEnd:
    def test_negotiation_grants_push_only_when_both_sides_ask(
        self, push_server, small_dataset
    ):
        pyramid = small_dataset.pyramid
        with SocketTransport(
            *push_server.address, pyramid=pyramid, push=True
        ) as transport:
            assert transport.push_enabled
        with SocketTransport(*push_server.address, pyramid=pyramid) as legacy:
            assert not legacy.push_enabled
            assert legacy.connect().push_cache is None

    def test_push_off_server_declines_a_push_client(self, small_dataset):
        with ThreadedSocketServer(
            small_dataset.pyramid,
            ServiceConfig(prefetch=PrefetchPolicy(k=4, push="off")),
            engine_factory=engine_factory(small_dataset.pyramid),
        ) as server:
            with SocketTransport(
                *server.address, pyramid=small_dataset.pyramid, push=True
            ) as transport:
                assert not transport.push_enabled
                conn = transport.connect()
                assert conn.push_cache is None
                assert conn.handle_request(None, TileKey(0, 0, 0)).tile.key == (
                    TileKey(0, 0, 0)
                )

    def test_pushed_tiles_answer_locally(self, push_server, small_dataset):
        with SocketTransport(
            *push_server.address, pyramid=small_dataset.pyramid, push=True
        ) as transport:
            conn = transport.connect()
            for move, k in PAN_WALK:
                response = conn.handle_request(move, k)
                assert response.tile.key == k
            cache = conn.push_cache
            assert cache.hits > 0  # pans were answered from the cache
            # Local hits report zero latency and count as hits
            # server-side too.
            info = conn.transport.roundtrip(
                protocol.OpenSession(session_id=None)
            )
            scheduler = push_server.server.push_scheduler
            assert scheduler.pushed_tiles > 0
            assert info is not None

    def test_held_tile_is_never_streamed_twice(
        self, push_server, small_dataset
    ):
        with SocketTransport(
            *push_server.address,
            pyramid=small_dataset.pyramid,
            push=True,
            push_cache_capacity=64,
        ) as transport:
            conn = transport.connect()
            for move, k in PAN_WALK:
                conn.handle_request(move, k)
            cache = conn.push_cache
            # With no client-side eviction, every put must be a distinct
            # key: a re-push of a held tile would raise pushed above the
            # number of tiles actually held.
            assert cache.evicted == 0
            assert cache.pushed == len(cache)
            assert push_server.server.push_scheduler.deduped_jobs > 0

    def test_new_request_cancels_stale_queued_pushes(self, small_dataset):
        # A tiny in-flight cap leaves jobs queued after every round; the
        # next request must cancel them (generation bump), not stream
        # a stale round.
        config = ServiceConfig(
            prefetch=PrefetchPolicy(k=4, push="on", push_max_inflight=1),
            cache=CacheConfig(recent_capacity=4, prefetch_capacity=8),
        )
        with ThreadedSocketServer(
            small_dataset.pyramid,
            config,
            engine_factory=engine_factory(small_dataset.pyramid),
        ) as server:
            with SocketTransport(
                *server.address, pyramid=small_dataset.pyramid, push=True
            ) as transport:
                conn = transport.connect()
                for move, k in PAN_WALK:
                    conn.handle_request(move, k)
                scheduler = server.server.push_scheduler
                assert scheduler.cancelled_jobs > 0
                assert scheduler.inflight_tiles(conn.session_id) <= 1

    def test_mid_push_disconnect_leaves_service_healthy(
        self, push_server, small_dataset
    ):
        pyramid = small_dataset.pyramid
        transport = SocketTransport(
            *push_server.address, pyramid=pyramid, push=True
        )
        conn = transport.connect()
        conn.handle_request(None, TileKey(3, 0, 1))
        # Vanish abruptly: no close_session, no goodbye — the server's
        # connection cleanup must reap the session and its push state.
        transport.close()
        scheduler = push_server.server.push_scheduler

        deadline = 50
        while scheduler.session_count and deadline:
            deadline -= 1
            time.sleep(0.1)
        assert scheduler.session_count == 0
        # And a fresh client is served as if nothing happened.
        with SocketTransport(
            *push_server.address, pyramid=pyramid, push=True
        ) as fresh:
            replacement = fresh.connect()
            for move, k in PAN_WALK:
                assert replacement.handle_request(move, k).tile.key == k
            replacement.close()

    def test_push_ack_without_negotiation_is_rejected(
        self, push_server, small_dataset
    ):
        with SocketTransport(
            *push_server.address, pyramid=small_dataset.pyramid
        ) as legacy:
            conn = legacy.connect()
            reply = legacy.roundtrip(
                PushAck(session_id=conn.session_id, held=())
            )
            assert isinstance(reply, protocol.ErrorInfo)
            with pytest.raises(InvalidRequestError):
                raise reply.to_exception()

    def test_async_client_mirrors_the_sync_push_path(
        self, push_server, small_dataset
    ):
        pyramid = small_dataset.pyramid

        async def drive():
            async with await AsyncSocketTransport.open(
                *push_server.address, pyramid=pyramid, push=True
            ) as transport:
                assert transport.push_enabled
                conn = await transport.connect()
                for move, k in PAN_WALK:
                    response = await conn.request(move, k)
                    assert response.tile.key == k
                hits = conn.push_cache.hits
                await conn.close()
                return hits

        assert asyncio.run(drive()) > 0

    def test_progressive_push_refines_client_tiles_in_place(
        self, small_dataset
    ):
        config = ServiceConfig(
            prefetch=PrefetchPolicy(k=4, push="on", fidelity="progressive"),
            cache=CacheConfig(recent_capacity=4, prefetch_capacity=8),
        )
        with ThreadedSocketServer(
            small_dataset.pyramid,
            config,
            engine_factory=engine_factory(small_dataset.pyramid),
        ) as server:
            with SocketTransport(
                *server.address,
                pyramid=small_dataset.pyramid,
                push=True,
                push_cache_capacity=64,
            ) as transport:
                conn = transport.connect()
                for move, k in PAN_WALK:
                    response = conn.handle_request(move, k)
                    assert response.tile.key == k
                    # Request/reply responses are always full fidelity.
                    assert response.tile.shape == (32, 32)
                cache = conn.push_cache
                scheduler = server.server.push_scheduler
                stats = scheduler.stats()
                # Coarse frames streamed, and refinements landed as
                # in-place upgrades on the client.
                assert stats["coarse_tiles"] > 0
                assert stats["refined_tiles"] > 0
                assert cache.upgraded > 0
                assert cache.downgrades_ignored == 0
                # Every held tile is full tile shape (coarse stand-ins
                # are upsampled on arrival) at a tracked fidelity.
                for k in cache.digest():
                    assert cache.get(k).shape == (32, 32)
                    assert 0.0 < cache.fidelity(k) <= 1.0

    def test_push_requires_payload_serving(self, small_dataset):
        with pytest.raises(ValueError, match="metadata-only"):
            ThreadedSocketServer(
                small_dataset.pyramid,
                PUSH_CONFIG,
                engine_factory=engine_factory(small_dataset.pyramid),
                include_payload=False,
            ).start()


# ----------------------------------------------------------------------
# wall-clock hotspot decay ticker (fake clock)
# ----------------------------------------------------------------------
class TestHotspotDecayTicker:
    def test_interval_validation(self):
        with pytest.raises(ValueError):
            HotspotDecayTicker(SharedHotspotRegistry(), 0.0)

    def test_fake_clock_ticks_advance_the_registry(self):
        async def drive() -> tuple[int, int]:
            registry = SharedHotspotRegistry(decay=0.5)
            registry.observe(TileKey(0, 0, 0))
            gate = asyncio.Semaphore(0)
            intervals = []

            async def fake_sleep(seconds: float) -> None:
                intervals.append(seconds)
                await gate.acquire()

            ticker = HotspotDecayTicker(registry, 2.5, sleep=fake_sleep)
            ticker.start()
            assert ticker.running
            for _ in range(3):
                gate.release()
            while ticker.ticks < 3:
                await asyncio.sleep(0)
            await ticker.stop()
            assert not ticker.running
            assert set(intervals) == {2.5}
            return ticker.ticks, registry.tick

        ticks, registry_tick = asyncio.run(drive())
        assert ticks == 3
        assert registry_tick == 3  # each tick advanced virtual time once

    def test_stop_is_idempotent_and_restart_is_refused(self):
        async def drive() -> None:
            ticker = HotspotDecayTicker(SharedHotspotRegistry(), 1.0)
            ticker.start()
            with pytest.raises(RuntimeError):
                ticker.start()
            await ticker.stop()
            await ticker.stop()

        asyncio.run(drive())

    def test_server_starts_and_stops_the_ticker(self, small_dataset):
        config = ServiceConfig(
            prefetch=PrefetchPolicy(
                k=4,
                shared_hotspots="observe",
                hotspot_tick_seconds=3600.0,  # never actually fires
            )
        )
        with ThreadedSocketServer(
            small_dataset.pyramid,
            config,
            engine_factory=engine_factory(small_dataset.pyramid),
        ) as server:
            assert server.server.hotspot_ticker is not None
            assert server.server.hotspot_ticker.running
        assert not server.server.hotspot_ticker.running

    def test_no_ticker_without_registry_or_interval(self, small_dataset):
        with ThreadedSocketServer(
            small_dataset.pyramid,
            ServiceConfig(prefetch=PrefetchPolicy(k=4)),
            engine_factory=engine_factory(small_dataset.pyramid),
        ) as server:
            assert server.server.hotspot_ticker is None


# ----------------------------------------------------------------------
# cold-start blending (hotspot warmup)
# ----------------------------------------------------------------------
class TestHotspotWarmupBlend:
    TRAINED = (key(1, 0, 0), key(1, 1, 0), key(1, 0, 1), key(1, 1, 1))

    def recommender(self, registry, warmup: int) -> HotspotRecommender:
        model = HotspotRecommender(
            num_hotspots=4, registry=registry, hotspot_warmup=warmup
        )
        model.hotspots = self.TRAINED
        return model

    def observe(self, registry, k: TileKey, times: int) -> None:
        for _ in range(times):
            registry.observe(k)

    def test_blend_schedule_is_linear_in_observations(self):
        registry = SharedHotspotRegistry()
        model = self.recommender(registry, warmup=8)
        live = key(2, 3, 3)
        # 0 observations: fully trained.
        assert model.effective_hotspots() == self.TRAINED
        # 2/8 observed -> 4*2//8 = 1 live slot leads, trained fills.
        self.observe(registry, live, 2)
        assert model.effective_hotspots() == (live,) + self.TRAINED[:3]
        # 4/8 observed -> 2 live slots; the heavier live key leads.
        self.observe(registry, live, 1)
        self.observe(registry, key(2, 2, 2), 1)
        assert model.effective_hotspots() == (
            live,
            key(2, 2, 2),
            self.TRAINED[0],
            self.TRAINED[1],
        )
        # 8/8 observed: fully live.
        self.observe(registry, live, 4)
        assert model.effective_hotspots() == (live, key(2, 2, 2))

    def test_warmup_zero_keeps_the_legacy_hard_switch(self):
        registry = SharedHotspotRegistry()
        model = self.recommender(registry, warmup=0)
        assert model.effective_hotspots() == self.TRAINED
        registry.observe(key(2, 3, 3))
        assert model.effective_hotspots() == (key(2, 3, 3),)

    def test_empty_registry_always_falls_back_to_trained(self):
        model = self.recommender(SharedHotspotRegistry(), warmup=8)
        assert model.effective_hotspots() == self.TRAINED

    def test_warmup_validation(self):
        with pytest.raises(ValueError):
            HotspotRecommender(hotspot_warmup=-1)

    def test_blend_dedups_trained_keys_already_live(self):
        registry = SharedHotspotRegistry()
        model = self.recommender(registry, warmup=4)
        # The live key IS a trained key: it must not appear twice.
        self.observe(registry, self.TRAINED[0], 2)
        blended = model.effective_hotspots()
        assert blended[0] == self.TRAINED[0]
        assert len(blended) == len(set(blended)) == 4


# ----------------------------------------------------------------------
# fuzz: interleaved push/reply frames through the decoder
# ----------------------------------------------------------------------
def _reply_frame(index: int) -> str:
    return protocol.encode(
        protocol.SessionInfo(
            session_id=f"reply-{index}",
            open=True,
            prefetch_mode="sync",
            requests=index,
            hits=0,
            hit_rate=0.0,
            average_latency_seconds=0.0,
        )
    )


def _push_frame(index: int) -> str:
    return protocol.encode(
        PushTile(
            session_id=f"push-{index}",
            tile=TileRef.from_key(TileKey(1, index % 2, 0)),
            rank=index,
            generation=1,
            utility=0.8**index,
        )
    )


@settings(max_examples=60, deadline=None)
@given(
    kinds=st.lists(st.booleans(), min_size=1, max_size=12),
    framing=st.sampled_from(["lines", "length"]),
    chunk=st.integers(min_value=1, max_value=64),
)
def test_interleaved_push_and_reply_frames_decode_in_order(
    kinds, framing, chunk
):
    """However pushes interleave with replies — and however the bytes
    fragment — the decoder yields every frame once, in order, and the
    client-side absorption rule (skip pushes, return the first
    non-push) always pairs the right reply."""
    texts = [
        _push_frame(i) if is_push else _reply_frame(i)
        for i, is_push in enumerate(kinds)
    ]
    stream = b"".join(encode_frame(text, framing) for text in texts)
    decoder = FrameDecoder(framing)
    received: list[str] = []
    for start in range(0, len(stream), chunk):
        received.extend(decoder.feed(stream[start : start + chunk]))
    assert received == texts
    assert decoder.buffered == 0
    # The absorption rule: pushes are consumed, the first reply wins.
    pushes, reply = [], None
    for text in received:
        message = protocol.decode(text)
        if isinstance(message, PushTile):
            pushes.append(message)
            continue
        reply = message
        break
    expected_pushes = 0
    for is_push in kinds:
        if not is_push:
            break
        expected_pushes += 1
    assert len(pushes) == expected_pushes
    if expected_pushes < len(kinds):
        assert reply is not None
        assert reply.session_id == f"reply-{expected_pushes}"
    else:
        assert reply is None
