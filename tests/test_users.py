"""Unit tests for sessions, traces, behavior, and the study runner."""

import numpy as np
import pytest

from repro.phases.model import AnalysisPhase
from repro.tiles.key import TileKey
from repro.tiles.moves import Move
from repro.users.behavior import BehaviorProfile, SimulatedUser
from repro.users.session import Request, StudyData, Trace
from repro.users.study import run_study

P = AnalysisPhase


def sample_trace(user=1, task=1) -> Trace:
    return Trace(
        user_id=user,
        task_id=task,
        requests=[
            Request(0, TileKey(0, 0, 0), None, P.FORAGING),
            Request(1, TileKey(1, 1, 0), Move.ZOOM_IN_NE, P.NAVIGATION),
            Request(2, TileKey(1, 0, 0), Move.PAN_LEFT, P.SENSEMAKING),
        ],
    )


class TestRequestTrace:
    def test_request_roundtrip(self):
        request = Request(3, TileKey(2, 1, 0), Move.PAN_DOWN, P.FORAGING)
        assert Request.from_dict(request.to_dict()) == request

    def test_initial_request_roundtrip(self):
        request = Request(0, TileKey(0, 0, 0), None, None)
        assert Request.from_dict(request.to_dict()) == request

    def test_trace_moves_skips_initial(self):
        assert sample_trace().moves() == [Move.ZOOM_IN_NE, Move.PAN_LEFT]

    def test_trace_tiles(self):
        assert sample_trace().tiles()[0] == TileKey(0, 0, 0)

    def test_trace_phases(self):
        assert sample_trace().phases() == [P.FORAGING, P.NAVIGATION, P.SENSEMAKING]

    def test_relabeled(self):
        trace = sample_trace()
        relabeled = trace.relabeled([P.NAVIGATION] * 3)
        assert relabeled.phases() == [P.NAVIGATION] * 3
        # Original untouched.
        assert trace.phases()[0] is P.FORAGING

    def test_relabeled_length_checked(self):
        with pytest.raises(ValueError):
            sample_trace().relabeled([P.FORAGING])

    def test_trace_roundtrip(self):
        trace = sample_trace()
        assert Trace.from_dict(trace.to_dict()).requests == trace.requests


class TestStudyData:
    def _study(self) -> StudyData:
        return StudyData(
            traces=[
                sample_trace(1, 1),
                sample_trace(1, 2),
                sample_trace(2, 1),
            ]
        )

    def test_ids(self):
        study = self._study()
        assert study.user_ids == [1, 2]
        assert study.task_ids == [1, 2]

    def test_filters(self):
        study = self._study()
        assert len(study.by_user(1)) == 2
        assert len(study.by_task(1)) == 2
        assert len(study.excluding_user(1)) == 1

    def test_total_requests(self):
        assert self._study().total_requests() == 9

    def test_save_load_roundtrip(self, tmp_path):
        study = self._study()
        path = tmp_path / "traces.jsonl"
        study.save(path)
        loaded = StudyData.load(path)
        assert len(loaded) == 3
        assert loaded.traces[0].requests == study.traces[0].requests


class TestBehaviorProfile:
    def test_sample_within_bounds(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            profile = BehaviorProfile.sample(rng)
            assert 0.0 <= profile.attention <= 1.0
            assert profile.retreat_depth >= 1
            assert profile.patience >= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            BehaviorProfile(
                attention=1.5, persistence=0.5, wander=0.1, peek_rate=0.1,
                retreat_depth=2, patience=2, cluster_greed=0.5,
                verify_rate=0.1, compare_rate=0.1,
            )
        with pytest.raises(ValueError):
            BehaviorProfile(
                attention=0.9, persistence=0.5, wander=0.1, peek_rate=0.1,
                retreat_depth=0, patience=2, cluster_greed=0.5,
                verify_rate=0.1, compare_rate=0.1,
            )


class TestSimulatedUser:
    @pytest.fixture(scope="class")
    def one_trace(self, small_dataset):
        profile = BehaviorProfile.sample(np.random.default_rng(1))
        user = SimulatedUser(small_dataset, user_id=1, profile=profile, seed=17)
        return user.run_task(small_dataset.task(2))

    def test_starts_at_root(self, one_trace):
        assert one_trace.requests[0].tile == TileKey(0, 0, 0)
        assert one_trace.requests[0].move is None

    def test_moves_are_legal(self, one_trace, small_dataset):
        grid = small_dataset.pyramid.grid
        for prev, cur in zip(one_trace.requests, one_trace.requests[1:]):
            assert cur.move is not None
            assert grid.apply(prev.tile, cur.move) == cur.tile

    def test_every_request_labeled(self, one_trace):
        assert all(r.phase is not None for r in one_trace.requests)

    def test_indices_sequential(self, one_trace):
        assert [r.index for r in one_trace.requests] == list(range(len(one_trace)))

    def test_deterministic_for_seed(self, small_dataset):
        profile = BehaviorProfile.sample(np.random.default_rng(1))
        a = SimulatedUser(small_dataset, 1, profile, seed=17).run_task(
            small_dataset.task(2)
        )
        b = SimulatedUser(small_dataset, 1, profile, seed=17).run_task(
            small_dataset.task(2)
        )
        assert a.requests == b.requests

    def test_budget_respected(self, small_dataset):
        profile = BehaviorProfile.sample(np.random.default_rng(2))
        user = SimulatedUser(
            small_dataset, 1, profile, seed=17, max_requests=15
        )
        trace = user.run_task(small_dataset.task(1))
        assert len(trace) <= 15

    def test_completes_task_2(self, small_dataset, one_trace):
        """Task 2 is well-stocked in the small world: user must finish."""
        task = small_dataset.task(2)
        found = {
            r.tile
            for r in one_trace.requests
            if small_dataset.satisfies_task(r.tile, task)
        }
        assert len(found) >= task.tiles_to_find


class TestRunStudy:
    def test_trace_count(self, small_study, small_dataset):
        assert len(small_study) == 4 * len(small_dataset.tasks)

    def test_user_ids_one_based(self, small_study):
        assert small_study.user_ids == [1, 2, 3, 4]

    def test_profiles_vary_between_users(self, small_study):
        """Different users produce different traces (Figure 8c-e)."""
        task1 = small_study.by_task(1)
        lengths = {len(t) for t in task1}
        moves = {tuple(m.value for m in t.moves()) for t in task1}
        assert len(moves) > 1

    def test_all_phases_appear(self, small_study):
        phases = {r.phase for t in small_study.traces for r in t.requests}
        assert phases == {P.FORAGING, P.NAVIGATION, P.SENSEMAKING}

    def test_rejects_bad_user_count(self, small_dataset):
        with pytest.raises(ValueError):
            run_study(small_dataset, num_users=0)
