"""Unit tests for pyramid construction and tile fetching."""

import numpy as np
import pytest

from repro.arraydb import ArraySchema, Attribute, Database, Dimension
from repro.tiles.key import TileKey
from repro.tiles.pyramid import TilePyramid
from repro.tiles.tile import DataTile


def make_source(db: Database, side: int = 16, name: str = "S") -> str:
    schema = ArraySchema(
        name,
        attributes=(Attribute("v"), Attribute("m")),
        dimensions=(
            Dimension("y", 0, side, side),
            Dimension("x", 0, side, side),
        ),
    )
    db.create_array(schema)
    rng = np.random.default_rng(0)
    db.write(name, "v", rng.random((side, side)))
    db.write(name, "m", (rng.random((side, side)) > 0.5).astype("float64"))
    return name


class TestBuild:
    def test_level_count(self, db):
        make_source(db, side=16)
        pyramid = TilePyramid.build(db, "S", tile_size=4)
        assert pyramid.num_levels == 3

    def test_single_level_when_tile_equals_side(self, db):
        make_source(db, side=8)
        pyramid = TilePyramid.build(db, "S", tile_size=8)
        assert pyramid.num_levels == 1

    def test_views_materialized(self, db):
        make_source(db, side=16)
        pyramid = TilePyramid.build(db, "S", tile_size=4)
        for level in range(3):
            assert db.has_array(pyramid.view_name(level))

    def test_views_chunked_by_tile(self, db):
        make_source(db, side=16)
        pyramid = TilePyramid.build(db, "S", tile_size=4)
        assert db.schema(pyramid.view_name(1)).chunk_shape == (4, 4)

    def test_deepest_level_is_raw(self, db):
        make_source(db, side=16)
        pyramid = TilePyramid.build(db, "S", tile_size=4)
        raw = db.read("S", "v")
        view = db.read(pyramid.view_name(2), "v")
        np.testing.assert_array_equal(view, raw)

    def test_coarser_levels_average(self, db):
        make_source(db, side=16)
        pyramid = TilePyramid.build(db, "S", tile_size=4)
        raw = db.read("S", "v")
        level1 = db.read(pyramid.view_name(1), "v")
        expected = raw.reshape(8, 2, 8, 2).mean(axis=(1, 3))
        np.testing.assert_allclose(level1, expected)

    def test_per_attribute_aggregates(self, db):
        make_source(db, side=16)
        pyramid = TilePyramid.build(db, "S", tile_size=4, aggregates={"m": "max"})
        raw = db.read("S", "m")
        level1 = db.read(pyramid.view_name(1), "m")
        expected = raw.reshape(8, 2, 8, 2).max(axis=(1, 3))
        np.testing.assert_allclose(level1, expected)

    def test_attribute_subset(self, db):
        make_source(db, side=16)
        pyramid = TilePyramid.build(db, "S", tile_size=4, attributes=("v",))
        assert pyramid.attributes == ("v",)
        tile = pyramid.fetch_tile(TileKey(0, 0, 0), charge=False)
        assert tile.attribute_names() == ["v"]

    def test_rejects_non_square(self, db):
        schema = ArraySchema(
            "R",
            attributes=(Attribute("v"),),
            dimensions=(Dimension("y", 0, 8, 8), Dimension("x", 0, 16, 16)),
        )
        db.create_array(schema)
        db.write("R", "v", np.zeros((8, 16)))
        with pytest.raises(ValueError):
            TilePyramid.build(db, "R", tile_size=4)

    def test_rejects_non_power_of_two_factor(self, db):
        schema = ArraySchema(
            "R",
            attributes=(Attribute("v"),),
            dimensions=(Dimension("y", 0, 12, 12), Dimension("x", 0, 12, 12)),
        )
        db.create_array(schema)
        db.write("R", "v", np.zeros((12, 12)))
        with pytest.raises(ValueError):
            TilePyramid.build(db, "R", tile_size=4)

    def test_rejects_indivisible_tile_size(self, db):
        make_source(db, side=16)
        with pytest.raises(ValueError):
            TilePyramid.build(db, "S", tile_size=5)


class TestFetch:
    def test_tile_shape(self, db):
        make_source(db, side=16)
        pyramid = TilePyramid.build(db, "S", tile_size=4)
        tile = pyramid.fetch_tile(TileKey(2, 3, 0))
        assert isinstance(tile, DataTile)
        assert tile.shape == (4, 4)

    def test_tile_content_matches_view(self, db):
        make_source(db, side=16)
        pyramid = TilePyramid.build(db, "S", tile_size=4)
        key = TileKey(2, 1, 2)
        tile = pyramid.fetch_tile(key)
        raw = db.read("S", "v")
        np.testing.assert_array_equal(tile.attribute("v"), raw[8:12, 4:8])

    def test_tile_region(self, db):
        make_source(db, side=16)
        pyramid = TilePyramid.build(db, "S", tile_size=4)
        assert pyramid.tile_region(TileKey(1, 1, 0)) == ((0, 4), (4, 8))

    def test_invalid_key_raises(self, db):
        make_source(db, side=16)
        pyramid = TilePyramid.build(db, "S", tile_size=4)
        with pytest.raises(ValueError):
            pyramid.fetch_tile(TileKey(5, 0, 0))

    def test_charged_fetch_advances_clock(self):
        from repro.arraydb import CostModel, VirtualClock

        clock = VirtualClock()
        db = Database(cost_model=CostModel(per_query_overhead=0.5), clock=clock)
        make_source(db, side=16)
        pyramid = TilePyramid.build(db, "S", tile_size=4)
        before = clock.now()
        pyramid.fetch_tile(TileKey(0, 0, 0), charge=True)
        assert clock.now() > before

    def test_uncharged_fetch_leaves_clock(self):
        from repro.arraydb import CostModel, VirtualClock

        clock = VirtualClock()
        db = Database(cost_model=CostModel(per_query_overhead=0.5), clock=clock)
        make_source(db, side=16)
        pyramid = TilePyramid.build(db, "S", tile_size=4)
        before = clock.now()
        pyramid.fetch_tile(TileKey(0, 0, 0), charge=False)
        assert clock.now() == before

    def test_parent_covers_children_averages(self, db):
        """One tile at level i covers the four child tiles at i+1."""
        make_source(db, side=16)
        pyramid = TilePyramid.build(db, "S", tile_size=4)
        parent = pyramid.fetch_tile(TileKey(1, 0, 0), charge=False)
        children = [
            pyramid.fetch_tile(k, charge=False)
            for k in TileKey(1, 0, 0).children()
        ]
        parent_mean = parent.attribute("v").mean()
        child_mean = np.mean([c.attribute("v").mean() for c in children])
        assert parent_mean == pytest.approx(child_mean)


class TestDataTile:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            DataTile(key=TileKey(0, 0, 0), attributes={})

    def test_rejects_mismatched_shapes(self):
        with pytest.raises(ValueError):
            DataTile(
                key=TileKey(0, 0, 0),
                attributes={"a": np.zeros((2, 2)), "b": np.zeros((3, 3))},
            )

    def test_nbytes(self):
        tile = DataTile(
            key=TileKey(0, 0, 0),
            attributes={"a": np.zeros((4, 4)), "b": np.zeros((4, 4))},
        )
        assert tile.nbytes == 2 * 16 * 8

    def test_missing_attribute_raises(self):
        tile = DataTile(key=TileKey(0, 0, 0), attributes={"a": np.zeros((2, 2))})
        with pytest.raises(KeyError):
            tile.attribute("b")

    def test_equality_by_content(self):
        a = DataTile(key=TileKey(1, 0, 0), attributes={"v": np.ones((2, 2))})
        b = DataTile(key=TileKey(1, 0, 0), attributes={"v": np.ones((2, 2))})
        c = DataTile(key=TileKey(1, 0, 0), attributes={"v": np.zeros((2, 2))})
        assert a == b
        assert a != c
