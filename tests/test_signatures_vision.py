"""Unit tests for SIFT, denseSIFT, and visual vocabularies."""

import numpy as np
import pytest

from repro.signatures.densesift import DenseSIFTSignature, extract_dense_descriptors
from repro.signatures.gradients import (
    DESCRIPTOR_DIM,
    build_scale_space,
    descriptor_at,
    difference_of_gaussians,
    dominant_orientation,
    normalize_tile_values,
    polar_gradients,
)
from repro.signatures.sift import SIFTSignature, detect_keypoints, extract_sift_descriptors
from repro.signatures.visualwords import VisualVocabulary
from repro.tiles.key import TileKey
from repro.tiles.tile import DataTile


def blob_image(size: int = 32, centers=((16, 16),), sigma: float = 2.5) -> np.ndarray:
    """An image with Gaussian blobs — guaranteed DoG extrema."""
    yy, xx = np.mgrid[0:size, 0:size].astype(float)
    img = np.zeros((size, size))
    for cy, cx in centers:
        img += np.exp(-((yy - cy) ** 2 + (xx - cx) ** 2) / (2 * sigma**2))
    return img


class TestGradients:
    def test_scale_space_monotone_smoothing(self):
        img = np.random.default_rng(0).random((32, 32))
        stack = build_scale_space(img, num_scales=4)
        stds = [layer.std() for layer in stack]
        assert stds == sorted(stds, reverse=True)

    def test_scale_space_needs_three(self):
        with pytest.raises(ValueError):
            build_scale_space(np.zeros((8, 8)), num_scales=2)

    def test_dog_shape(self):
        img = np.zeros((16, 16))
        dogs = difference_of_gaussians(build_scale_space(img, 5))
        assert dogs.shape == (4, 16, 16)

    def test_polar_gradients_angles_in_range(self):
        img = np.random.default_rng(1).random((16, 16))
        mag, ang = polar_gradients(img)
        assert mag.min() >= 0.0
        assert ang.min() >= 0.0
        assert ang.max() < 2 * np.pi

    def test_dominant_orientation_of_ramp(self):
        yy, xx = np.mgrid[0:32, 0:32].astype(float)
        mag, ang = polar_gradients(xx)  # gradient points +x
        orientation = dominant_orientation(mag, ang, 16, 16)
        assert abs(orientation) < 0.5 or abs(orientation - 2 * np.pi) < 0.5

    def test_descriptor_dimension(self):
        img = blob_image()
        mag, ang = polar_gradients(img)
        vec = descriptor_at(mag, ang, 16, 16)
        assert vec is not None
        assert vec.shape == (DESCRIPTOR_DIM,)
        assert np.linalg.norm(vec) == pytest.approx(1.0)

    def test_descriptor_near_border_is_none(self):
        img = blob_image()
        mag, ang = polar_gradients(img)
        assert descriptor_at(mag, ang, 2, 2) is None

    def test_descriptor_flat_patch_is_none(self):
        mag = np.zeros((32, 32))
        ang = np.zeros((32, 32))
        assert descriptor_at(mag, ang, 16, 16) is None

    def test_normalize_tile_values(self):
        values = np.asarray([[-1.0, 0.0], [1.0, 2.0]])
        out = normalize_tile_values(values)
        np.testing.assert_allclose(out, [[0.0, 0.5], [1.0, 1.0]])

    def test_normalize_rejects_empty_range(self):
        with pytest.raises(ValueError):
            normalize_tile_values(np.zeros(2), (1.0, 1.0))


class TestSIFT:
    def test_blob_produces_keypoints(self):
        kps = detect_keypoints(blob_image(), contrast_threshold=0.001)
        assert len(kps) >= 1

    def test_flat_image_no_keypoints(self):
        assert detect_keypoints(np.zeros((32, 32))) == []

    def test_keypoints_sorted_by_response(self):
        kps = detect_keypoints(
            blob_image(centers=((10, 10), (24, 24))), contrast_threshold=0.0005
        )
        responses = [kp.response for kp in kps]
        assert responses == sorted(responses, reverse=True)

    def test_max_keypoints_respected(self):
        img = np.random.default_rng(0).random((64, 64))
        kps = detect_keypoints(img, contrast_threshold=0.0001, max_keypoints=5)
        assert len(kps) <= 5

    def test_descriptors_shape(self):
        descriptors = extract_sift_descriptors(blob_image(), contrast_threshold=0.001)
        assert descriptors.ndim == 2
        assert descriptors.shape[1] == DESCRIPTOR_DIM

    def test_flat_image_empty_descriptors(self):
        descriptors = extract_sift_descriptors(np.zeros((32, 32)))
        assert descriptors.shape == (0, DESCRIPTOR_DIM)

    def test_similar_blobs_have_similar_descriptors(self):
        a = extract_sift_descriptors(blob_image(centers=((14, 14),)), contrast_threshold=0.001)
        b = extract_sift_descriptors(blob_image(centers=((18, 18),)), contrast_threshold=0.001)
        assert a.shape[0] >= 1 and b.shape[0] >= 1
        # Best-match distance should be small for the same structure.
        d = np.linalg.norm(a[:, None, :] - b[None, :, :], axis=2).min()
        assert d < 0.8


class TestDenseSIFT:
    def test_grid_positions(self):
        positions, descriptors = extract_dense_descriptors(
            blob_image(size=32), stride=8
        )
        assert positions.shape[0] == descriptors.shape[0]
        assert descriptors.shape[1] == DESCRIPTOR_DIM
        assert positions.shape[0] == 9  # 3x3 grid at stride 8 in 32px

    def test_flat_image_empty(self):
        positions, descriptors = extract_dense_descriptors(np.zeros((32, 32)))
        assert descriptors.shape[0] == 0

    def test_bad_stride(self):
        with pytest.raises(ValueError):
            extract_dense_descriptors(np.zeros((32, 32)), stride=0)


class TestVisualVocabulary:
    def _descriptors(self, n=60, dim=8, clusters=3, seed=0):
        rng = np.random.default_rng(seed)
        centers = rng.random((clusters, dim)) * 10
        return np.vstack([
            centers[i % clusters] + rng.normal(0, 0.05, dim) for i in range(n)
        ])

    def test_fit_recovers_cluster_count(self):
        vocab = VisualVocabulary.fit(self._descriptors(), num_words=3)
        assert vocab.num_words == 3

    def test_fit_shrinks_when_few_descriptors(self):
        descriptors = np.asarray([[0.0, 0.0], [1.0, 1.0]])
        vocab = VisualVocabulary.fit(descriptors, num_words=10)
        assert vocab.num_words == 2

    def test_assign_nearest(self):
        vocab = VisualVocabulary(np.asarray([[0.0, 0.0], [10.0, 10.0]]))
        words = vocab.assign(np.asarray([[0.1, 0.1], [9.5, 9.9]]))
        assert list(words) == [0, 1]

    def test_assign_dim_mismatch(self):
        vocab = VisualVocabulary(np.zeros((2, 4)))
        with pytest.raises(ValueError):
            vocab.assign(np.zeros((1, 5)))

    def test_encode_counts_mass(self):
        vocab = VisualVocabulary(np.asarray([[0.0, 0.0], [10.0, 10.0]]))
        hist = vocab.encode(np.asarray([[0.0, 0.1], [0.1, 0.0], [9.9, 10.0]]))
        # Soft assignment preserves one unit of mass per descriptor.
        assert hist.sum() == pytest.approx(3.0)
        assert hist[0] > hist[1]

    def test_encode_empty_is_zero(self):
        vocab = VisualVocabulary(np.zeros((4, 8)))
        hist = vocab.encode(np.zeros((0, 8)))
        np.testing.assert_array_equal(hist, np.zeros(4))

    def test_encode_normalized_option(self):
        vocab = VisualVocabulary(np.asarray([[0.0], [10.0]]))
        hist = vocab.encode(np.asarray([[0.0], [0.1], [9.9]]), normalize=True)
        assert hist.sum() == pytest.approx(1.0)

    def test_fit_rejects_empty(self):
        with pytest.raises(ValueError):
            VisualVocabulary.fit(np.zeros((0, 4)))

    def test_save_load_roundtrip(self, tmp_path):
        vocab = VisualVocabulary.fit(self._descriptors(), num_words=3)
        path = tmp_path / "vocab.npy"
        vocab.save(path)
        loaded = VisualVocabulary.load(path)
        np.testing.assert_array_equal(loaded.centers, vocab.centers)


class TestSignaturesOnTiles:
    def _tile(self, values) -> DataTile:
        return DataTile(key=TileKey(0, 0, 0), attributes={"v": values})

    def test_sift_signature_vector_length(self, small_vocabulary):
        sig = SIFTSignature(small_vocabulary)
        rng = np.random.default_rng(0)
        tile = self._tile(rng.uniform(-1, 1, (32, 32)))
        vec = sig.compute(tile, "v")
        assert len(vec) == small_vocabulary.num_words

    def test_densesift_signature_vector_length(self, small_vocabulary):
        sig = DenseSIFTSignature(small_vocabulary, pool=2)
        tile = self._tile(np.random.default_rng(0).uniform(-1, 1, (32, 32)))
        vec = sig.compute(tile, "v")
        assert len(vec) == 4 * small_vocabulary.num_words

    def test_densesift_rejects_bad_pool(self, small_vocabulary):
        with pytest.raises(ValueError):
            DenseSIFTSignature(small_vocabulary, pool=0)

    def test_ocean_tile_is_empty_signature(self, small_dataset, small_vocabulary):
        """Flat ocean tiles carry no landmarks."""
        sig = SIFTSignature(small_vocabulary)
        deepest = small_dataset.num_levels - 1
        ocean = None
        for key in small_dataset.pyramid.grid.keys_at_level(deepest):
            tile = small_dataset.pyramid.fetch_tile(key, charge=False)
            if tile.attribute("land_mask").max() == 0.0:
                ocean = tile
                break
        assert ocean is not None, "no fully-ocean tile found"
        vec = sig.compute(ocean, "ndsi_avg")
        assert vec.sum() == pytest.approx(0.0)
