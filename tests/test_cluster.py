"""The multi-process cluster: ring, handshake intersection, failover,
gossip convergence, and a spawn-context smoke boot.

Everything runs over loopback on ephemeral ports.  The spawn tests are
the only ones that cross a process boundary; they use small worlds so
worker boot (dataset build + bind) stays cheap.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.allocation import SingleModelStrategy
from repro.core.engine import PredictionEngine
from repro.core.popularity import SharedHotspotRegistry
from repro.middleware.cluster import (
    ConsistentHashRing,
    ProcessCluster,
    ThreadedClusterServer,
    _snake_walk,
)
from repro.middleware.config import PrefetchPolicy, ServiceConfig
from repro.middleware.net import SocketTransport, ThreadedSocketServer
from repro.middleware.protocol import (
    HotspotGossip,
    WorkerUnavailableError,
)
from repro.recommenders.momentum import MomentumRecommender
from repro.tiles.key import TileKey

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")


def make_engine(grid) -> PredictionEngine:
    model = MomentumRecommender()
    return PredictionEngine(
        grid, {model.name: model}, SingleModelStrategy(model.name)
    )


def all_keys(grid, level: int) -> list[TileKey]:
    n = grid.tiles_per_dim(level)
    return [TileKey(level, x, y) for x in range(n) for y in range(n)]


@pytest.fixture
def cluster2(tiny_dataset):
    """A 2-worker threaded cluster over the tiny world."""
    grid = tiny_dataset.pyramid.grid
    with ThreadedClusterServer(
        tiny_dataset.pyramid,
        ServiceConfig(),
        workers=2,
        engine_factory=lambda: make_engine(grid),
    ) as cluster:
        yield cluster


# ----------------------------------------------------------------------
# consistent-hash ring
# ----------------------------------------------------------------------
class TestConsistentHashRing:
    def test_same_key_same_worker_across_runs(self):
        nodes = ["w0", "w1", "w2", "w3"]
        keys = [TileKey(4, x, y) for x in range(16) for y in range(16)]
        a = ConsistentHashRing(nodes, replicas=64, seed=0)
        b = ConsistentHashRing(list(reversed(nodes)), replicas=64, seed=0)
        assert [a.owner(k) for k in keys] == [b.owner(k) for k in keys]

    def test_same_key_same_worker_across_processes(self):
        """The mapping is a pure function of (seed, nodes, replicas) —
        a fresh interpreter (fresh PYTHONHASHSEED) must agree."""
        keys = [(3, x, y) for x in range(8) for y in range(8)]
        script = (
            "from repro.middleware.cluster import ConsistentHashRing\n"
            "from repro.tiles.key import TileKey\n"
            "ring = ConsistentHashRing(['w0','w1','w2'], replicas=64, seed=0)\n"
            f"keys = {keys!r}\n"
            "print(','.join(ring.owner(TileKey(*k)) for k in keys))\n"
        )
        env = dict(os.environ, PYTHONPATH=REPO_SRC, PYTHONHASHSEED="random")
        runs = [
            subprocess.run(
                [sys.executable, "-c", script],
                env=env,
                capture_output=True,
                text=True,
                check=True,
            ).stdout.strip()
            for _ in range(2)
        ]
        assert runs[0] == runs[1]
        local = ConsistentHashRing(["w0", "w1", "w2"], replicas=64, seed=0)
        mine = ",".join(local.owner(TileKey(*k)) for k in keys)
        assert mine == runs[0]

    def test_balance_within_factor(self):
        ring = ConsistentHashRing(
            ["w0", "w1", "w2", "w3"], replicas=128, seed=0
        )
        keys = [TileKey(5, x, y) for x in range(32) for y in range(32)]
        counts = {n: 0 for n in ring.nodes}
        for key in keys:
            counts[ring.owner(key)] += 1
        expected = len(keys) / len(counts)
        for node, count in counts.items():
            assert count > expected / 3, (node, counts)
            assert count < expected * 3, (node, counts)

    def test_removal_moves_only_dead_nodes_keys(self):
        ring = ConsistentHashRing(
            ["w0", "w1", "w2", "w3"], replicas=64, seed=0
        )
        keys = [TileKey(5, x, y) for x in range(32) for y in range(32)]
        before = {k: ring.owner(k) for k in keys}
        ring.remove("w1")
        moved = 0
        for key, owner in before.items():
            after = ring.owner(key)
            if owner == "w1":
                assert after != "w1"
                moved += 1
            else:
                assert after == owner, "a surviving node's key moved"
        # ~1/N of the space moved — and nothing else.
        assert 0 < moved < len(keys) / 2

    def test_seed_changes_partition(self):
        keys = [TileKey(4, x, y) for x in range(16) for y in range(16)]
        a = ConsistentHashRing(["w0", "w1"], replicas=64, seed=0)
        b = ConsistentHashRing(["w0", "w1"], replicas=64, seed=1)
        assert [a.owner(k) for k in keys] != [b.owner(k) for k in keys]

    def test_empty_ring_raises_typed_error(self):
        ring = ConsistentHashRing()
        with pytest.raises(WorkerUnavailableError):
            ring.owner(TileKey(0, 0, 0))

    def test_duplicate_add_rejected(self):
        ring = ConsistentHashRing(["w0"])
        with pytest.raises(ValueError):
            ring.add("w0")


# ----------------------------------------------------------------------
# handshake capability intersection
# ----------------------------------------------------------------------
class TestHandshakeIntersection:
    def test_binary_granted_when_all_workers_speak_it(self, cluster2):
        host, port = cluster2.address
        transport = SocketTransport(host, port, payload="binary")
        try:
            assert transport.payload == "binary"
        finally:
            transport.close()

    def test_json_client_stays_json(self, cluster2):
        host, port = cluster2.address
        transport = SocketTransport(host, port)
        try:
            assert transport.payload == "json"
            assert transport.push_enabled is False
        finally:
            transport.close()

    def test_binary_denied_when_a_worker_is_json_only(self, tiny_dataset):
        grid = tiny_dataset.pyramid.grid
        factory = lambda: make_engine(grid)  # noqa: E731
        json_only = ThreadedSocketServer(
            tiny_dataset.pyramid,
            ServiceConfig(),
            engine_factory=factory,
            payloads=("json",),
        )
        full = ThreadedSocketServer(
            tiny_dataset.pyramid, ServiceConfig(), engine_factory=factory
        )
        from repro.middleware.cluster import ThreadedRouter

        router = None
        try:
            json_addr = json_only.start()
            full_addr = full.start()
            router = ThreadedRouter(
                {
                    f"{json_addr[0]}:{json_addr[1]}": json_addr,
                    f"{full_addr[0]}:{full_addr[1]}": full_addr,
                }
            )
            host, port = router.start()
            transport = SocketTransport(host, port, payload="binary")
            try:
                # The client offered binary, the router allows it, but
                # one worker cannot speak it: intersection says JSON.
                assert transport.payload == "json"
            finally:
                transport.close()
        finally:
            if router is not None:
                router.stop()
            full.stop()
            json_only.stop()

    def test_push_denied_when_workers_pull_only(self, cluster2):
        # Workers run push="off" (the default): a push-hungry client
        # must be granted the intersection — no push.
        host, port = cluster2.address
        transport = SocketTransport(host, port, push=True)
        try:
            assert transport.push_enabled is False
        finally:
            transport.close()

    def test_push_granted_when_all_workers_push(self, tiny_dataset):
        grid = tiny_dataset.pyramid.grid
        config = ServiceConfig(prefetch=PrefetchPolicy(push="on"))
        with ThreadedClusterServer(
            tiny_dataset.pyramid,
            config,
            workers=2,
            engine_factory=lambda: make_engine(grid),
        ) as cluster:
            host, port = cluster.address
            pushy = SocketTransport(host, port, push=True)
            plain = SocketTransport(host, port)
            try:
                assert pushy.push_enabled is True
                assert plain.push_enabled is False
            finally:
                pushy.close()
                plain.close()


# ----------------------------------------------------------------------
# request routing + failover
# ----------------------------------------------------------------------
class TestRoutingAndFailover:
    def test_replay_through_router_serves_all_tiles(
        self, cluster2, tiny_dataset
    ):
        grid = tiny_dataset.pyramid.grid
        host, port = cluster2.address
        transport = SocketTransport(host, port)
        try:
            client = transport.connect(session_id="router-replay")
            walk = _snake_walk(grid, TileKey(0, 0, 0), 16)
            assert len(walk) == 16
            for move, key in walk:
                response = client.request(move, key)
                assert response.tile.key == key
            client.close()
        finally:
            transport.close()

    def test_worker_death_surfaces_typed_error_then_recovers(
        self, cluster2, tiny_dataset
    ):
        grid = tiny_dataset.pyramid.grid
        host, port = cluster2.address
        transport = SocketTransport(host, port)
        try:
            client = transport.connect(session_id="failover")
            keys = all_keys(grid, grid.deepest_level)
            # Serve one request so the connection is warm.
            client.request(None, keys[0])
            cluster2.stop_worker(0)
            errors = 0
            for key in keys:
                try:
                    response = client.request(None, key)
                except WorkerUnavailableError:
                    errors += 1
                    # The retry goes to a survivor — same connection,
                    # same session (it was opened on every worker).
                    response = client.request(None, key)
                assert response.tile.key == key
            # The dead worker owned a real share of the key space, and
            # each session hits its partition at most once before the
            # ring re-maps it.
            assert errors >= 1
            client.close()
        finally:
            transport.close()

    def test_mid_flight_death_leaves_other_sessions_served(
        self, tiny_dataset
    ):
        grid = tiny_dataset.pyramid.grid
        with ThreadedClusterServer(
            tiny_dataset.pyramid,
            ServiceConfig(),
            workers=3,
            engine_factory=lambda: make_engine(grid),
        ) as cluster:
            host, port = cluster.address
            t1 = SocketTransport(host, port)
            t2 = SocketTransport(host, port)
            try:
                c1 = t1.connect(session_id="alpha")
                c2 = t2.connect(session_id="beta")
                keys = all_keys(grid, grid.deepest_level)
                c1.request(None, keys[0])
                c2.request(None, keys[1])
                cluster.stop_worker(1)
                # Both sessions — on separate connections — keep being
                # served after the death, modulo one typed retry each.
                for client in (c1, c2):
                    for key in keys[:8]:
                        try:
                            response = client.request(None, key)
                        except WorkerUnavailableError:
                            response = client.request(None, key)
                        assert response.tile.key == key
                c1.close()
                c2.close()
            finally:
                t1.close()
                t2.close()

    def test_sessions_survive_on_fresh_connection_after_death(
        self, cluster2, tiny_dataset
    ):
        grid = tiny_dataset.pyramid.grid
        host, port = cluster2.address
        cluster2.stop_worker(1)
        transport = SocketTransport(host, port)
        try:
            client = transport.connect(session_id="late-joiner")
            for key in all_keys(grid, grid.deepest_level)[:6]:
                assert client.request(None, key).tile.key == key
            client.close()
        finally:
            transport.close()


# ----------------------------------------------------------------------
# gossip convergence
# ----------------------------------------------------------------------
class TestGossip:
    @pytest.fixture
    def gossip_cluster(self, tiny_dataset):
        grid = tiny_dataset.pyramid.grid
        config = ServiceConfig(
            prefetch=PrefetchPolicy(shared_hotspots="observe")
        )
        with ThreadedClusterServer(
            tiny_dataset.pyramid,
            config,
            workers=2,
            engine_factory=lambda: make_engine(grid),
        ) as cluster:
            yield cluster

    def registries(self, cluster):
        return [
            worker.server.service.service.hotspot_registry
            for worker in cluster.workers
        ]

    def test_disjoint_hot_tiles_converge_to_one_snapshot(
        self, gossip_cluster
    ):
        reg_a, reg_b = self.registries(gossip_cluster)
        hot_a = TileKey(2, 0, 0)
        hot_b = TileKey(2, 3, 3)
        for _ in range(5):
            reg_a.observe(hot_a)
            reg_b.observe(hot_b)
        # Round 1 collects both locals into the router's merged view;
        # round 2 rebroadcasts it back — full convergence.
        gossip_cluster.gossip_once()
        view = gossip_cluster.gossip_once()
        merged = dict(view.snapshot(10))
        assert merged[hot_a] == pytest.approx(5.0)
        assert merged[hot_b] == pytest.approx(5.0)
        for registry in self.registries(gossip_cluster):
            local = dict(registry.snapshot(10))
            assert local[hot_a] == pytest.approx(5.0)
            assert local[hot_b] == pytest.approx(5.0)

    def test_gossip_is_idempotent_under_extra_rounds(self, gossip_cluster):
        reg_a, _ = self.registries(gossip_cluster)
        hot = TileKey(1, 1, 1)
        for _ in range(3):
            reg_a.observe(hot)
        for _ in range(4):
            view = gossip_cluster.gossip_once()
        # merge_max: rebroadcast loops do not inflate the weight.
        assert dict(view.snapshot(10))[hot] == pytest.approx(3.0)
        for registry in self.registries(gossip_cluster):
            assert dict(registry.snapshot(10))[hot] == pytest.approx(3.0)

    def test_gossip_skips_workers_without_registry(self, cluster2):
        # Default config: shared_hotspots="off", workers reply with a
        # typed error; the round completes with an empty view.
        view = cluster2.gossip_once()
        assert view.snapshot(10) == []

    def test_wire_message_roundtrip(self):
        message = HotspotGossip(entries=((2, 1, 1, 3.5),), tick=4)
        from repro.middleware.protocol import decode, encode

        assert decode(encode(message)) == message

    def test_merge_max_convergence_is_order_free(self):
        a = SharedHotspotRegistry(shards=1)
        b = SharedHotspotRegistry(shards=1)
        a.observe(TileKey(1, 0, 0), 4.0)
        b.observe(TileKey(1, 1, 1), 2.0)
        ab = SharedHotspotRegistry.from_snapshot(a.snapshot(10))
        ab.merge_max(b)
        ba = SharedHotspotRegistry.from_snapshot(b.snapshot(10))
        ba.merge_max(a)
        assert dict(ab.snapshot(10)) == dict(ba.snapshot(10))


# ----------------------------------------------------------------------
# spawn-context smoke
# ----------------------------------------------------------------------
class TestProcessCluster:
    def test_two_worker_spawn_boot_and_replay(self):
        from repro.modis.dataset import MODISDataset

        dataset = MODISDataset.build(size=64, tile_size=16, days=1, seed=7)
        grid = dataset.pyramid.grid
        with ProcessCluster(
            workers=2, size=64, tile_size=16, days=1, seed=7
        ) as cluster:
            assert len(cluster.worker_ports) == 2
            host, port = cluster.address
            transport = SocketTransport(host, port)
            try:
                client = transport.connect(session_id="spawn-smoke")
                walk = _snake_walk(grid, TileKey(0, 0, 0), 10)
                for move, key in walk:
                    response = client.request(move, key)
                    assert response.tile.key == key
                client.close()
            finally:
                transport.close()

    def test_hard_kill_surfaces_typed_error_and_cluster_survives(self):
        from repro.modis.dataset import MODISDataset

        dataset = MODISDataset.build(size=64, tile_size=16, days=1, seed=7)
        grid = dataset.pyramid.grid
        with ProcessCluster(
            workers=2, size=64, tile_size=16, days=1, seed=7
        ) as cluster:
            host, port = cluster.address
            transport = SocketTransport(host, port)
            try:
                client = transport.connect(session_id="kill-smoke")
                keys = all_keys(grid, grid.deepest_level)
                client.request(None, keys[0])
                cluster.kill_worker(0)
                errors = 0
                for key in keys:
                    try:
                        response = client.request(None, key)
                    except WorkerUnavailableError:
                        errors += 1
                        response = client.request(None, key)
                    assert response.tile.key == key
                assert errors >= 1
                client.close()
            finally:
                transport.close()
