"""One conformance harness, every transport.

Each transport kind — the facade itself (the baseline), the in-process
wire transport, the synchronous socket client (both framings), and the
asyncio socket client — replays the same trace through a *fresh, cold*
service and must produce numerically identical results: the same
(tile, hit, latency, phase) sequence, the same reconstructed
``LatencyRecorder``, and bit-identical tile payloads.  The second half
checks the shared error contract: typed duplicate-session and
unknown-session errors, idempotent close, on every transport.
"""

from __future__ import annotations

import asyncio
from contextlib import contextmanager

import numpy as np
import pytest

from repro.core.allocation import SingleModelStrategy
from repro.core.engine import PredictionEngine
from repro.middleware.client import AsyncBrowsingSession, BrowsingSession
from repro.middleware.cluster import ThreadedClusterServer
from repro.middleware.config import PrefetchPolicy, ServiceConfig
from repro.middleware.latency import LatencyRecorder
from repro.middleware.net import (
    AsyncSocketTransport,
    SocketTransport,
    ThreadedSocketServer,
)
from repro.middleware.protocol import (
    DuplicateSessionError,
    SessionNotFoundError,
)
from repro.middleware.service import ForeCacheService
from repro.middleware.transport import InProcessTransport, Transport
from repro.recommenders.momentum import MomentumRecommender
from repro.tiles.key import TileKey
from repro.tiles.moves import Move
from repro.users.session import Request, Trace

CONFIG = ServiceConfig(prefetch=PrefetchPolicy(k=5))

#: Every client-facing transport kind the conformance suite exercises.
TRANSPORT_KINDS = (
    "inprocess",
    "socket-sync-lines",
    "socket-sync-length",
    "socket-async",
)


def make_engine(grid) -> PredictionEngine:
    model = MomentumRecommender()
    return PredictionEngine(
        grid, {model.name: model}, SingleModelStrategy(model.name)
    )


def engine_factory(pyramid):
    return lambda: make_engine(pyramid.grid)


def signature(responses):
    """What must match across transports, per response."""
    return [
        (r.tile.key, r.hit, r.latency_seconds, r.phase) for r in responses
    ]


def client_recorder(responses) -> LatencyRecorder:
    """The recorder a client can rebuild purely from wire responses."""
    recorder = LatencyRecorder()
    for response in responses:
        recorder.record(response.latency_seconds, response.hit)
    return recorder


# ----------------------------------------------------------------------
# one replay per transport kind, each over a fresh cold service
# ----------------------------------------------------------------------
def replay_facade(pyramid, trace):
    with ForeCacheService(
        pyramid, CONFIG, engine_factory=engine_factory(pyramid)
    ) as service:
        handle = service.open_session()
        responses = BrowsingSession(handle).replay(trace)
        # The facade's server-side recorder is the ground truth the
        # client-side reconstruction must agree with.
        assert client_recorder(responses).to_dict() == (
            handle.recorder.to_dict()
        )
        return responses


def replay_inprocess(pyramid, trace):
    with ForeCacheService(
        pyramid, CONFIG, engine_factory=engine_factory(pyramid)
    ) as service:
        conn = InProcessTransport(service).connect()
        responses = BrowsingSession(conn).replay(trace)
        conn.close()
        return responses


def replay_socket_sync(pyramid, trace, framing):
    with ThreadedSocketServer(
        pyramid, CONFIG, engine_factory=engine_factory(pyramid), framing=framing
    ) as server:
        with SocketTransport(
            *server.address, pyramid=pyramid, framing=framing
        ) as transport:
            conn = transport.connect()
            responses = BrowsingSession(conn).replay(trace)
            conn.close()
            return responses


def replay_socket_async(pyramid, trace):
    async def drive(address):
        async with await AsyncSocketTransport.open(
            *address, pyramid=pyramid
        ) as transport:
            conn = await transport.connect()
            responses = await AsyncBrowsingSession(conn).replay(trace)
            await conn.close()
            return responses

    with ThreadedSocketServer(
        pyramid, CONFIG, engine_factory=engine_factory(pyramid)
    ) as server:
        return asyncio.run(drive(server.address))


REPLAYS = {
    "inprocess": replay_inprocess,
    "socket-sync-lines": lambda p, t: replay_socket_sync(p, t, "lines"),
    "socket-sync-length": lambda p, t: replay_socket_sync(p, t, "length"),
    "socket-async": replay_socket_async,
}


@pytest.fixture(scope="module")
def replay_trace(small_study):
    return max(small_study.traces, key=len)


@pytest.fixture(scope="module")
def baseline(small_dataset, replay_trace):
    return replay_facade(small_dataset.pyramid, replay_trace)


class TestReplayEquivalence:
    """The acceptance bar: identical replays through every transport."""

    @pytest.mark.parametrize("kind", TRANSPORT_KINDS)
    def test_replay_matches_facade(
        self, kind, small_dataset, replay_trace, baseline
    ):
        responses = REPLAYS[kind](small_dataset.pyramid, replay_trace)
        assert signature(responses) == signature(baseline)
        # Latency statistics rebuilt client-side are numerically
        # identical, including raw samples and percentiles.
        assert client_recorder(responses).to_dict() == (
            client_recorder(baseline).to_dict()
        )

    @pytest.mark.parametrize("kind", TRANSPORT_KINDS)
    def test_payloads_survive_the_wire_losslessly(
        self, kind, small_dataset, replay_trace, baseline
    ):
        responses = REPLAYS[kind](small_dataset.pyramid, replay_trace)
        for wire, reference in zip(responses, baseline):
            assert wire.tile.key == reference.tile.key
            assert set(wire.tile.attributes) == set(reference.tile.attributes)
            for name, array in reference.tile.attributes.items():
                assert wire.tile.attributes[name].dtype == array.dtype
                np.testing.assert_array_equal(
                    wire.tile.attributes[name], array
                )


# ----------------------------------------------------------------------
# the shared error contract
# ----------------------------------------------------------------------
@contextmanager
def open_transport(kind, pyramid):
    """A live, connect-capable transport of the requested kind."""
    if kind == "inprocess":
        with ForeCacheService(
            pyramid, CONFIG, engine_factory=engine_factory(pyramid)
        ) as service:
            yield InProcessTransport(service)
        return
    framing = "length" if kind.endswith("length") else "lines"
    with ThreadedSocketServer(
        pyramid, CONFIG, engine_factory=engine_factory(pyramid), framing=framing
    ) as server:
        with SocketTransport(
            *server.address, pyramid=pyramid, framing=framing
        ) as transport:
            yield transport


SYNC_KINDS = ("inprocess", "socket-sync-lines", "socket-sync-length")


class TestErrorContract:
    @pytest.mark.parametrize("kind", SYNC_KINDS)
    def test_transports_implement_the_shared_abc(self, kind, small_dataset):
        with open_transport(kind, small_dataset.pyramid) as transport:
            assert isinstance(transport, Transport)

    @pytest.mark.parametrize("kind", SYNC_KINDS)
    def test_duplicate_session_is_typed(self, kind, small_dataset):
        with open_transport(kind, small_dataset.pyramid) as transport:
            transport.connect(session_id="alice")
            with pytest.raises(DuplicateSessionError):
                transport.connect(session_id="alice")

    @pytest.mark.parametrize("kind", SYNC_KINDS)
    def test_request_after_close_is_typed(self, kind, small_dataset):
        with open_transport(kind, small_dataset.pyramid) as transport:
            conn = transport.connect()
            conn.handle_request(None, TileKey(0, 0, 0))
            conn.close()
            # A closed session is forgotten by id on every transport.
            with pytest.raises(SessionNotFoundError):
                conn.handle_request(None, TileKey(0, 0, 0))

    @pytest.mark.parametrize("kind", SYNC_KINDS)
    def test_close_is_idempotent(self, kind, small_dataset):
        with open_transport(kind, small_dataset.pyramid) as transport:
            conn = transport.connect()
            conn.close()
            conn.close()

    @pytest.mark.parametrize("kind", SYNC_KINDS)
    def test_sessions_share_one_cache(self, kind, small_dataset):
        with open_transport(kind, small_dataset.pyramid) as transport:
            first = transport.connect()
            second = transport.connect()
            assert not first.handle_request(None, TileKey(2, 1, 1)).hit
            assert second.handle_request(None, TileKey(2, 1, 1)).hit


# ----------------------------------------------------------------------
# negotiated binary payloads replay bit-identically
# ----------------------------------------------------------------------
def replay_inprocess_binary(pyramid, trace):
    with ForeCacheService(
        pyramid, CONFIG, engine_factory=engine_factory(pyramid)
    ) as service:
        conn = InProcessTransport(service, payload="binary").connect()
        responses = BrowsingSession(conn).replay(trace)
        conn.close()
        return responses


def replay_socket_sync_binary(pyramid, trace, framing):
    with ThreadedSocketServer(
        pyramid, CONFIG, engine_factory=engine_factory(pyramid), framing=framing
    ) as server:
        with SocketTransport(
            *server.address, pyramid=pyramid, framing=framing, payload="binary"
        ) as transport:
            assert transport.payload == "binary"
            conn = transport.connect()
            responses = BrowsingSession(conn).replay(trace)
            conn.close()
            return responses


def replay_socket_async_binary(pyramid, trace):
    async def drive(address):
        async with await AsyncSocketTransport.open(
            *address, pyramid=pyramid, payload="binary"
        ) as transport:
            assert transport.payload == "binary"
            conn = await transport.connect()
            responses = await AsyncBrowsingSession(conn).replay(trace)
            await conn.close()
            return responses

    with ThreadedSocketServer(
        pyramid, CONFIG, engine_factory=engine_factory(pyramid)
    ) as server:
        return asyncio.run(drive(server.address))


BINARY_REPLAYS = {
    "inprocess": replay_inprocess_binary,
    "socket-sync-lines": lambda p, t: replay_socket_sync_binary(p, t, "lines"),
    "socket-sync-length": lambda p, t: replay_socket_sync_binary(
        p, t, "length"
    ),
    "socket-async": replay_socket_async_binary,
}


class TestBinaryPayloadConformance:
    """The binary encoding changes bytes on the wire, nothing else:
    every front end replays bit-identically to the facade under
    ``payload="binary"``, and a declining peer's wire is byte-identical
    to the JSON-only protocol revision."""

    @pytest.mark.parametrize("kind", TRANSPORT_KINDS)
    def test_binary_replay_matches_facade(
        self, kind, small_dataset, replay_trace, baseline
    ):
        responses = BINARY_REPLAYS[kind](small_dataset.pyramid, replay_trace)
        assert signature(responses) == signature(baseline)
        assert client_recorder(responses).to_dict() == (
            client_recorder(baseline).to_dict()
        )

    @pytest.mark.parametrize("kind", TRANSPORT_KINDS)
    def test_binary_payloads_survive_losslessly(
        self, kind, small_dataset, replay_trace, baseline
    ):
        responses = BINARY_REPLAYS[kind](small_dataset.pyramid, replay_trace)
        for wire, reference in zip(responses, baseline):
            assert wire.tile.key == reference.tile.key
            assert set(wire.tile.attributes) == set(reference.tile.attributes)
            for name, array in reference.tile.attributes.items():
                assert wire.tile.attributes[name].dtype == array.dtype
                np.testing.assert_array_equal(
                    wire.tile.attributes[name], array
                )

    def test_binary_moves_fewer_bytes_than_json(
        self, small_dataset, replay_trace
    ):
        pyramid = small_dataset.pyramid

        def replay_bytes(payload):
            with ThreadedSocketServer(
                pyramid, CONFIG, engine_factory=engine_factory(pyramid)
            ) as server:
                with SocketTransport(
                    *server.address, pyramid=pyramid, payload=payload
                ) as transport:
                    conn = transport.connect()
                    BrowsingSession(conn).replay(replay_trace)
                    conn.close()
                    return transport.bytes_received

        assert replay_bytes("binary") < replay_bytes("json")

    def test_declining_server_keeps_the_json_wire_byte_identical(
        self, small_dataset, replay_trace
    ):
        # A binary-offering client against a JSON-only server must leave
        # the wire byte-identical to a client that never offered binary
        # — the only divergence allowed is the hello frame itself.
        pyramid = small_dataset.pyramid

        def replay_tapped(payload):
            with ThreadedSocketServer(
                pyramid,
                CONFIG,
                engine_factory=engine_factory(pyramid),
                payloads=("json",),
            ) as server:
                with SocketTransport(
                    *server.address,
                    pyramid=pyramid,
                    payload=payload,
                    wire_tap=True,
                ) as transport:
                    assert transport.payload == "json"
                    conn = transport.connect()
                    BrowsingSession(conn).replay(replay_trace)
                    conn.close()
                    return (
                        bytes(transport.wire_sent),
                        bytes(transport.wire_received),
                    )

        sent_json, received_json = replay_tapped("json")
        sent_binary, received_binary = replay_tapped("binary")
        # Every server->client byte matches, welcome included.
        assert received_binary == received_json
        # Client->server streams match from the second frame on (the
        # hello differs by exactly the offered-payloads field).
        _, _, tail_json = sent_json.partition(b"\n")
        _, _, tail_binary = sent_binary.partition(b"\n")
        assert tail_binary == tail_json
        assert sent_binary != sent_json


# ----------------------------------------------------------------------
# push stays invisible unless both sides opt in
# ----------------------------------------------------------------------
class TestPushOffConformance:
    """``push="off"`` (and denied negotiation) must be bit-identical to
    the pre-push stack: same signatures, same client-side latency
    statistics, no push state anywhere."""

    def test_explicit_push_off_config_matches_facade(
        self, small_dataset, replay_trace, baseline
    ):
        config = ServiceConfig(prefetch=PrefetchPolicy(k=5, push="off"))
        pyramid = small_dataset.pyramid
        with ThreadedSocketServer(
            pyramid, config, engine_factory=engine_factory(pyramid)
        ) as server:
            assert server.server.push_scheduler is None
            with SocketTransport(*server.address, pyramid=pyramid) as transport:
                conn = transport.connect()
                responses = BrowsingSession(conn).replay(replay_trace)
                conn.close()
        assert signature(responses) == signature(baseline)
        assert client_recorder(responses).to_dict() == (
            client_recorder(baseline).to_dict()
        )

    def test_denied_negotiation_replays_identically(
        self, small_dataset, replay_trace, baseline
    ):
        # A push-requesting client against a push-off server falls back
        # to the plain pull protocol: capability denied, no push cache,
        # replay bit-identical to the facade.
        pyramid = small_dataset.pyramid
        with ThreadedSocketServer(
            pyramid, CONFIG, engine_factory=engine_factory(pyramid)
        ) as server:
            with SocketTransport(
                *server.address, pyramid=pyramid, push=True
            ) as transport:
                assert not transport.push_enabled
                conn = transport.connect()
                assert conn.push_cache is None
                responses = BrowsingSession(conn).replay(replay_trace)
                conn.close()
        assert signature(responses) == signature(baseline)
        assert client_recorder(responses).to_dict() == (
            client_recorder(baseline).to_dict()
        )


# ----------------------------------------------------------------------
# fidelity stays invisible unless switched on
# ----------------------------------------------------------------------
FIDELITY_OFF_CONFIG = ServiceConfig(
    prefetch=PrefetchPolicy(k=5, fidelity="off")
)


class TestFidelityOffConformance:
    """``fidelity="off"`` (the default) must be bit-identical to the
    pre-fidelity stack on every front end: same signatures, same client
    statistics, full-fidelity responses, and not a single extra byte on
    the wire."""

    def replay_off(self, kind, pyramid, trace):
        if kind == "inprocess":
            with ForeCacheService(
                pyramid,
                FIDELITY_OFF_CONFIG,
                engine_factory=engine_factory(pyramid),
            ) as service:
                conn = InProcessTransport(service).connect()
                responses = BrowsingSession(conn).replay(trace)
                conn.close()
                return responses
        if kind == "socket-async":

            async def drive(address):
                async with await AsyncSocketTransport.open(
                    *address, pyramid=pyramid
                ) as transport:
                    conn = await transport.connect()
                    responses = await AsyncBrowsingSession(conn).replay(trace)
                    await conn.close()
                    return responses

            with ThreadedSocketServer(
                pyramid,
                FIDELITY_OFF_CONFIG,
                engine_factory=engine_factory(pyramid),
            ) as server:
                return asyncio.run(drive(server.address))
        framing = "length" if kind.endswith("length") else "lines"
        with ThreadedSocketServer(
            pyramid,
            FIDELITY_OFF_CONFIG,
            engine_factory=engine_factory(pyramid),
            framing=framing,
        ) as server:
            with SocketTransport(
                *server.address, pyramid=pyramid, framing=framing
            ) as transport:
                conn = transport.connect()
                responses = BrowsingSession(conn).replay(trace)
                conn.close()
                return responses

    @pytest.mark.parametrize("kind", TRANSPORT_KINDS)
    def test_explicit_fidelity_off_matches_facade(
        self, kind, small_dataset, replay_trace, baseline
    ):
        responses = self.replay_off(kind, small_dataset.pyramid, replay_trace)
        assert signature(responses) == signature(baseline)
        assert client_recorder(responses).to_dict() == (
            client_recorder(baseline).to_dict()
        )
        # Off mode never degrades: every response is the real tile.
        assert all(r.fidelity == 1.0 for r in responses)

    def test_fidelity_off_wire_is_byte_identical(
        self, small_dataset, replay_trace
    ):
        # The fidelity field is omitted from every full-resolution
        # response, so an explicit fidelity="off" server leaves the
        # wire byte-for-byte identical to the default-config server.
        pyramid = small_dataset.pyramid

        def replay_tapped(config):
            with ThreadedSocketServer(
                pyramid, config, engine_factory=engine_factory(pyramid)
            ) as server:
                with SocketTransport(
                    *server.address, pyramid=pyramid, wire_tap=True
                ) as transport:
                    conn = transport.connect()
                    BrowsingSession(conn).replay(replay_trace)
                    conn.close()
                    return (
                        bytes(transport.wire_sent),
                        bytes(transport.wire_received),
                    )

        sent_default, received_default = replay_tapped(CONFIG)
        sent_off, received_off = replay_tapped(FIDELITY_OFF_CONFIG)
        assert received_off == received_default
        assert sent_off == sent_default

    def test_full_fidelity_is_absent_from_the_wire_form(self):
        from repro.middleware import protocol as proto
        from repro.middleware.protocol import PushTile, TileRef, TileResponse

        response = TileResponse(
            session_id="s",
            tile=TileRef.from_key(TileKey(1, 0, 0)),
            latency_seconds=0.5,
            hit=True,
        )
        assert "fidelity" not in response.to_dict()
        assert proto.decode(proto.encode(response)).fidelity == 1.0
        push = PushTile(
            session_id="s",
            tile=TileRef.from_key(TileKey(1, 0, 0)),
            rank=0,
            generation=1,
            utility=1.0,
        )
        assert "fidelity" not in push.to_dict()
        # A degraded frame carries the field; absent always means full.
        degraded = TileResponse(
            session_id="s",
            tile=TileRef.from_key(TileKey(1, 0, 0)),
            latency_seconds=0.5,
            hit=True,
            fidelity=0.25,
        )
        assert degraded.to_dict()["fidelity"] == 0.25
        assert proto.decode(proto.encode(degraded)).fidelity == 0.25


# ----------------------------------------------------------------------
# the cluster front end: a router in the path changes nothing
# ----------------------------------------------------------------------
def replay_cluster(pyramid, trace, *, framing="lines", payload="json"):
    """One trace through a 1-worker cluster, client side.

    A single worker behind the consistent-hash router *is* the direct
    socket path with an extra hop: every session opens on the one
    worker, every request routes to it, and the router forwards frames
    without touching their numerics.
    """
    with ThreadedClusterServer(
        pyramid,
        CONFIG,
        workers=1,
        engine_factory=engine_factory(pyramid),
        framing=framing,
    ) as cluster:
        with SocketTransport(
            *cluster.address, pyramid=pyramid, framing=framing, payload=payload
        ) as transport:
            conn = transport.connect()
            responses = BrowsingSession(conn).replay(trace)
            conn.close()
            return responses


def partition_local_traces(grid, ring, steps=12):
    """One bounce-walk trace per ring node, confined to its partition.

    Each trace alternates between an adjacent (left, right) tile pair
    at the deepest level whose two keys share a ring owner, so every
    request of that session routes to exactly one worker.
    """
    level = grid.deepest_level
    pairs = {}
    for key in grid.keys_at_level(level):
        right = grid.apply(key, Move.PAN_RIGHT)
        if right is None:
            continue
        owner = ring.owner(key)
        if owner == ring.owner(right) and owner not in pairs:
            pairs[owner] = (key, right)
        if len(pairs) == len(ring.nodes):
            break
    traces = {}
    for index, owner in enumerate(sorted(pairs)):
        left, right = pairs[owner]
        requests = [Request(index=0, tile=left, move=None)]
        for step in range(steps):
            if step % 2 == 0:
                requests.append(
                    Request(index=step + 1, tile=right, move=Move.PAN_RIGHT)
                )
            else:
                requests.append(
                    Request(index=step + 1, tile=left, move=Move.PAN_LEFT)
                )
        traces[owner] = Trace(user_id=index, task_id=0, requests=requests)
    return traces


class TestClusterConformance:
    """Recorder-for-recorder identity through the router.

    A 1-worker cluster must be bit-identical to the facade baseline on
    both framings and both payload encodings; on an N-worker cluster,
    a session whose trace stays inside one ring partition must see
    exactly the single-node numbers.
    """

    @pytest.mark.parametrize("framing", ("lines", "length"))
    def test_single_worker_cluster_matches_facade(
        self, framing, small_dataset, replay_trace, baseline
    ):
        responses = replay_cluster(
            small_dataset.pyramid, replay_trace, framing=framing
        )
        assert signature(responses) == signature(baseline)
        assert client_recorder(responses).to_dict() == (
            client_recorder(baseline).to_dict()
        )

    def test_single_worker_cluster_binary_matches_facade(
        self, small_dataset, replay_trace, baseline
    ):
        responses = replay_cluster(
            small_dataset.pyramid, replay_trace, payload="binary"
        )
        assert signature(responses) == signature(baseline)
        assert client_recorder(responses).to_dict() == (
            client_recorder(baseline).to_dict()
        )
        for wire, reference in zip(responses, baseline):
            assert wire.tile.key == reference.tile.key
            for name, array in reference.tile.attributes.items():
                assert wire.tile.attributes[name].dtype == array.dtype
                np.testing.assert_array_equal(wire.tile.attributes[name], array)

    def test_partition_local_sessions_match_single_node(self, small_dataset):
        pyramid = small_dataset.pyramid
        with ThreadedClusterServer(
            pyramid, CONFIG, workers=2, engine_factory=engine_factory(pyramid)
        ) as cluster:
            ring = cluster.router.router.ring
            traces = partition_local_traces(pyramid.grid, ring)
            # Both workers own at least one adjacent pair at this scale.
            assert set(traces) == set(ring.nodes)
            cluster_runs = {}
            with SocketTransport(*cluster.address, pyramid=pyramid) as transport:
                for owner in sorted(traces):
                    conn = transport.connect()
                    cluster_runs[owner] = BrowsingSession(conn).replay(
                        traces[owner]
                    )
                    conn.close()
        for owner in sorted(traces):
            # The single-node truth: a dedicated cold server replaying
            # only this session.
            with ThreadedSocketServer(
                pyramid, CONFIG, engine_factory=engine_factory(pyramid)
            ) as server:
                with SocketTransport(
                    *server.address, pyramid=pyramid
                ) as transport:
                    conn = transport.connect()
                    solo = BrowsingSession(conn).replay(traces[owner])
                    conn.close()
            assert signature(cluster_runs[owner]) == signature(solo)
            assert client_recorder(cluster_runs[owner]).to_dict() == (
                client_recorder(solo).to_dict()
            )

    @pytest.mark.bench
    def test_momentum_figure_pin_through_the_cluster(self):
        # The headline numeric: the momentum LOO latency average at
        # size=256/users=4, k=5, replayed through a 1-worker cluster,
        # equals the direct socket path recorder-for-recorder and the
        # long-pinned figure value to the bit.
        from repro.experiments.context import ExperimentContext
        from repro.experiments.runner import replay_model_latency

        context = ExperimentContext.build(size=256, num_users=4)
        factory = lambda train: context.momentum_engine(train)
        direct = replay_model_latency(context, factory, k=5, frontend="socket")
        routed = replay_model_latency(context, factory, k=5, frontend="cluster")
        assert routed.to_dict() == direct.to_dict()
        assert routed.average_seconds == 0.22686750000000075
