"""Unit tests for value-based signatures and the registry."""

import numpy as np
import pytest

from repro.signatures.base import Signature, SignatureRegistry
from repro.signatures.histogram import HistogramSignature
from repro.signatures.stats import NormalSignature
from repro.signatures.toolbox import LinearCorrelationSignature, OutlierCountSignature
from repro.tiles.key import TileKey
from repro.tiles.tile import DataTile


def tile_of(values: np.ndarray) -> DataTile:
    return DataTile(key=TileKey(0, 0, 0), attributes={"v": np.asarray(values)})


class TestNormalSignature:
    def test_unit_mass(self):
        sig = NormalSignature()
        vec = sig.compute(tile_of(np.random.default_rng(0).normal(0, 0.2, (8, 8))), "v")
        assert vec.sum() == pytest.approx(1.0)
        assert len(vec) == 16

    def test_mean_shifts_mass(self):
        sig = NormalSignature(bins=8)
        low = sig.compute(tile_of(np.full((4, 4), -0.8)), "v")
        high = sig.compute(tile_of(np.full((4, 4), 0.8)), "v")
        assert np.argmax(low) < np.argmax(high)

    def test_constant_tile_handled(self):
        sig = NormalSignature()
        vec = sig.compute(tile_of(np.zeros((4, 4))), "v")
        assert np.all(np.isfinite(vec))
        assert vec.sum() == pytest.approx(1.0)

    def test_wider_std_spreads_mass(self):
        sig = NormalSignature(bins=8)
        narrow = sig.compute(tile_of(np.random.default_rng(0).normal(0, 0.05, 256)), "v")
        wide = sig.compute(tile_of(np.random.default_rng(0).normal(0, 0.5, 256)), "v")
        assert narrow.max() > wide.max()

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            NormalSignature(bins=1)
        with pytest.raises(ValueError):
            NormalSignature(value_range=(1.0, -1.0))


class TestHistogramSignature:
    def test_unit_mass(self):
        sig = HistogramSignature()
        vec = sig.compute(tile_of(np.linspace(-1, 1, 64).reshape(8, 8)), "v")
        assert vec.sum() == pytest.approx(1.0)

    def test_bin_placement(self):
        sig = HistogramSignature(bins=4, value_range=(0.0, 1.0))
        vec = sig.compute(tile_of(np.full((4, 4), 0.9)), "v")
        assert vec[3] == pytest.approx(1.0)

    def test_out_of_range_clipped(self):
        sig = HistogramSignature(bins=4, value_range=(0.0, 1.0))
        vec = sig.compute(tile_of(np.full((4, 4), 5.0)), "v")
        assert vec.sum() == pytest.approx(1.0)

    def test_identical_tiles_identical_signatures(self):
        sig = HistogramSignature()
        values = np.random.default_rng(1).uniform(-1, 1, (8, 8))
        a = sig.compute(tile_of(values), "v")
        b = sig.compute(tile_of(values.copy()), "v")
        np.testing.assert_array_equal(a, b)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            HistogramSignature(bins=0)


class TestToolboxSignatures:
    def test_outlier_no_outliers(self):
        sig = OutlierCountSignature()
        vec = sig.compute(tile_of(np.random.default_rng(0).normal(0, 1, 1000)), "v")
        # Nearly all mass within 3 sigma.
        assert vec[:3].sum() > 0.95

    def test_outlier_detects_spikes(self):
        sig = OutlierCountSignature()
        values = np.zeros(100)
        values[:3] = 100.0
        vec = sig.compute(tile_of(values), "v")
        assert vec[-1] > 0.0

    def test_outlier_constant(self):
        vec = OutlierCountSignature().compute(tile_of(np.ones(16)), "v")
        assert vec[0] == pytest.approx(1.0)

    def test_outlier_rejects_bad_edges(self):
        with pytest.raises(ValueError):
            OutlierCountSignature(edges=(1.0, 0.5))

    def test_correlation_rising_east(self):
        sig = LinearCorrelationSignature()
        yy, xx = np.mgrid[0:8, 0:8]
        vec = sig.compute(tile_of(xx.astype(float)), "v")
        assert vec[0] > 0.9  # strong +x correlation
        assert vec[1] == pytest.approx(0.5)  # no y correlation

    def test_correlation_constant_is_neutral(self):
        vec = LinearCorrelationSignature().compute(tile_of(np.ones((4, 4))), "v")
        np.testing.assert_allclose(vec, [0.5, 0.5])


class TestRegistry:
    def test_register_and_get(self):
        registry = SignatureRegistry((NormalSignature(),))
        assert isinstance(registry.get("normal"), NormalSignature)

    def test_duplicate_rejected(self):
        registry = SignatureRegistry((NormalSignature(),))
        with pytest.raises(ValueError):
            registry.register(NormalSignature())

    def test_overwrite_allowed(self):
        registry = SignatureRegistry((NormalSignature(),))
        registry.register(NormalSignature(bins=8), overwrite=True)
        assert registry.get("normal").bins == 8

    def test_missing_signature(self):
        with pytest.raises(KeyError):
            SignatureRegistry().get("nope")

    def test_names_sorted(self):
        registry = SignatureRegistry((HistogramSignature(), NormalSignature()))
        assert registry.names() == ["histogram", "normal"]

    def test_iteration_and_len(self):
        registry = SignatureRegistry((HistogramSignature(), NormalSignature()))
        assert len(registry) == 2
        assert all(isinstance(s, Signature) for s in registry)
