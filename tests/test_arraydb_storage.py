"""Unit tests for chunk stores (memory and disk)."""

import numpy as np
import pytest

from repro.arraydb.storage import DiskChunkStore, MemoryChunkStore

KEY = ("A", "v", (0, 1))
OTHER = ("A", "v", (1, 1))


@pytest.fixture(params=["memory", "disk"])
def store(request, tmp_path):
    if request.param == "memory":
        return MemoryChunkStore()
    return DiskChunkStore(tmp_path / "chunks")


class TestChunkStores:
    def test_put_get_roundtrip(self, store):
        chunk = np.arange(12.0).reshape(3, 4)
        store.put(KEY, chunk)
        np.testing.assert_array_equal(store.get(KEY), chunk)

    def test_contains(self, store):
        assert KEY not in store
        store.put(KEY, np.zeros(2))
        assert KEY in store

    def test_get_missing_raises(self, store):
        with pytest.raises(KeyError):
            store.get(KEY)

    def test_overwrite(self, store):
        store.put(KEY, np.zeros(3))
        store.put(KEY, np.ones(3))
        np.testing.assert_array_equal(store.get(KEY), np.ones(3))

    def test_delete(self, store):
        store.put(KEY, np.zeros(3))
        store.delete(KEY)
        assert KEY not in store

    def test_delete_missing_raises(self, store):
        with pytest.raises(KeyError):
            store.delete(KEY)

    def test_keys(self, store):
        store.put(KEY, np.zeros(2))
        store.put(OTHER, np.zeros(2))
        assert set(store.keys()) == {KEY, OTHER}

    def test_len(self, store):
        assert len(store) == 0
        store.put(KEY, np.zeros(2))
        assert len(store) == 1

    def test_bytes_used_positive(self, store):
        store.put(KEY, np.zeros((10, 10)))
        assert store.bytes_used() >= 10 * 10 * 8

    def test_dtype_preserved(self, store):
        chunk = np.arange(4, dtype="int16")
        store.put(KEY, chunk)
        assert store.get(KEY).dtype == np.dtype("int16")


class TestDiskStoreSpecifics:
    def test_index_rebuilt_on_reopen(self, tmp_path):
        path = tmp_path / "chunks"
        store = DiskChunkStore(path)
        store.put(KEY, np.arange(6.0))
        reopened = DiskChunkStore(path)
        np.testing.assert_array_equal(reopened.get(KEY), np.arange(6.0))

    def test_clear_removes_everything(self, tmp_path):
        store = DiskChunkStore(tmp_path / "chunks")
        store.put(KEY, np.zeros(4))
        store.clear()
        assert len(store) == 0
        assert KEY not in store

    def test_negative_coordinates_roundtrip(self, tmp_path):
        store = DiskChunkStore(tmp_path / "chunks")
        key = ("A", "v", (-1, 2))
        store.put(key, np.ones(2))
        reopened = DiskChunkStore(tmp_path / "chunks")
        assert key in reopened
