"""Unit tests for distances and Algorithm 3 candidate scoring."""

import numpy as np
import pytest

from repro.signatures.distance import (
    chi_squared_distance,
    rank_by_score,
    score_candidates,
    weighted_l2,
)
from repro.tiles.key import TileKey


class TestChiSquared:
    def test_identical_is_zero(self):
        vec = np.asarray([0.25, 0.5, 0.25])
        assert chi_squared_distance(vec, vec) == 0.0

    def test_disjoint_histograms(self):
        a = np.asarray([1.0, 0.0])
        b = np.asarray([0.0, 1.0])
        assert chi_squared_distance(a, b) == pytest.approx(1.0)

    def test_symmetric(self):
        rng = np.random.default_rng(0)
        a, b = rng.random(8), rng.random(8)
        assert chi_squared_distance(a, b) == pytest.approx(chi_squared_distance(b, a))

    def test_nonnegative(self):
        rng = np.random.default_rng(1)
        for _ in range(20):
            a, b = rng.random(5), rng.random(5)
            assert chi_squared_distance(a, b) >= 0.0

    def test_zero_bins_ignored(self):
        a = np.asarray([0.0, 1.0, 0.0])
        b = np.asarray([0.0, 1.0, 0.0])
        assert chi_squared_distance(a, b) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            chi_squared_distance(np.ones(3), np.ones(4))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            chi_squared_distance(np.asarray([-0.1, 1.0]), np.ones(2))


class TestWeightedL2:
    def test_default_weights(self):
        assert weighted_l2([3.0, 4.0]) == pytest.approx(5.0)

    def test_custom_weights(self):
        assert weighted_l2([3.0, 4.0], [1.0, 0.0]) == pytest.approx(3.0)

    def test_zero_weights_zero(self):
        assert weighted_l2([3.0, 4.0], [0.0, 0.0]) == 0.0

    def test_weight_count_mismatch(self):
        with pytest.raises(ValueError):
            weighted_l2([1.0], [1.0, 2.0])

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            weighted_l2([1.0], [-1.0])


class TestScoreCandidates:
    """Algorithm 3 on a synthetic signature table."""

    def _setup(self):
        roi = [TileKey(2, 0, 0)]
        similar = TileKey(2, 1, 0)  # adjacent, same vector
        different = TileKey(2, 0, 1)  # adjacent, orthogonal vector
        vectors = {
            (roi[0], "sig"): np.asarray([1.0, 0.0]),
            (similar, "sig"): np.asarray([1.0, 0.0]),
            (different, "sig"): np.asarray([0.0, 1.0]),
        }
        return roi, similar, different, vectors

    def test_similar_candidate_scores_lower(self):
        roi, similar, different, vectors = self._setup()
        scores = score_candidates(
            [similar, different],
            roi,
            ["sig"],
            lambda key, name: vectors[(key, name)],
            {"sig": chi_squared_distance},
        )
        assert scores[similar] < scores[different]

    def test_physical_distance_penalty(self):
        roi = [TileKey(3, 0, 0)]
        near = TileKey(3, 1, 0)
        far = TileKey(3, 5, 0)
        vec = np.asarray([0.5, 0.5])
        noise = np.asarray([0.6, 0.4])
        vectors = {
            (roi[0], "sig"): vec,
            (near, "sig"): noise,
            (far, "sig"): noise,
        }
        scores = score_candidates(
            [near, far],
            roi,
            ["sig"],
            lambda key, name: vectors[(key, name)],
            {"sig": chi_squared_distance},
        )
        assert scores[near] < scores[far]

    def test_multiple_roi_tiles_summed(self):
        roi = [TileKey(2, 0, 0), TileKey(2, 1, 0)]
        candidate = TileKey(2, 2, 0)
        vectors = {
            (roi[0], "sig"): np.asarray([1.0, 0.0]),
            (roi[1], "sig"): np.asarray([1.0, 0.0]),
            (candidate, "sig"): np.asarray([1.0, 0.0]),
        }
        scores = score_candidates(
            [candidate],
            roi,
            ["sig"],
            lambda key, name: vectors[(key, name)],
            {"sig": chi_squared_distance},
        )
        assert candidate in scores

    def test_empty_candidates(self):
        assert (
            score_candidates([], [TileKey(0, 0, 0)], ["sig"], None, {"sig": None})
            == {}
        )

    def test_requires_roi(self):
        with pytest.raises(ValueError):
            score_candidates(
                [TileKey(0, 0, 0)], [], ["sig"], None, {"sig": None}
            )

    def test_weights_length_checked(self):
        with pytest.raises(ValueError):
            score_candidates(
                [TileKey(1, 0, 0)],
                [TileKey(1, 1, 1)],
                ["sig"],
                lambda k, n: np.ones(2),
                {"sig": chi_squared_distance},
                weights=[1.0, 2.0],
            )

    def test_scores_normalized_bounded(self):
        roi, similar, different, vectors = self._setup()
        scores = score_candidates(
            [similar, different],
            roi,
            ["sig"],
            lambda key, name: vectors[(key, name)],
            {"sig": chi_squared_distance},
        )
        assert all(s >= 0.0 for s in scores.values())


class TestRankByScore:
    def test_ascending_order(self):
        a, b, c = TileKey(1, 0, 0), TileKey(1, 1, 0), TileKey(1, 0, 1)
        ranked = rank_by_score({a: 0.5, b: 0.1, c: 0.9})
        assert ranked == [b, a, c]

    def test_ties_broken_by_key(self):
        a, b = TileKey(1, 1, 0), TileKey(1, 0, 0)
        ranked = rank_by_score({a: 0.5, b: 0.5})
        assert ranked == [b, a]
