"""Unit tests for chunked arrays: region reads/writes across chunks."""

import numpy as np
import pytest

from repro.arraydb import ArraySchema, Attribute, Database, Dimension
from repro.arraydb.array import ChunkedArray, full_region, region_cells
from repro.arraydb.storage import MemoryChunkStore


def make_array(chunk: int = 4, side: int = 8) -> ChunkedArray:
    schema = ArraySchema(
        "A",
        attributes=(Attribute("v"),),
        dimensions=(
            Dimension("y", 0, side, chunk),
            Dimension("x", 0, side, chunk),
        ),
    )
    return ChunkedArray(schema, MemoryChunkStore())


class TestWriteRead:
    def test_full_roundtrip(self):
        array = make_array()
        data = np.arange(64.0).reshape(8, 8)
        array.write("v", data)
        out, stats = array.read("v")
        np.testing.assert_array_equal(out, data)
        assert stats.chunks_read == 4

    def test_empty_array_reads_zeros(self):
        array = make_array()
        out, stats = array.read("v")
        np.testing.assert_array_equal(out, np.zeros((8, 8)))
        assert stats.chunks_read == 0

    def test_region_read_within_one_chunk(self):
        array = make_array()
        data = np.arange(64.0).reshape(8, 8)
        array.write("v", data)
        out, stats = array.read("v", ((0, 4), (4, 8)))
        np.testing.assert_array_equal(out, data[0:4, 4:8])
        assert stats.chunks_read == 1

    def test_region_read_spanning_chunks(self):
        array = make_array()
        data = np.arange(64.0).reshape(8, 8)
        array.write("v", data)
        out, stats = array.read("v", ((2, 6), (2, 6)))
        np.testing.assert_array_equal(out, data[2:6, 2:6])
        assert stats.chunks_read == 4

    def test_partial_write_preserves_other_cells(self):
        array = make_array()
        array.write("v", np.ones((8, 8)))
        array.write("v", np.full((2, 2), 5.0), ((0, 2), (0, 2)))
        out, _ = array.read("v")
        assert out[0, 0] == 5.0
        assert out[3, 3] == 1.0

    def test_write_then_read_unaligned_region(self):
        array = make_array()
        block = np.arange(15.0).reshape(3, 5)
        array.write("v", block, ((1, 4), (2, 7)))
        out, _ = array.read("v", ((1, 4), (2, 7)))
        np.testing.assert_array_equal(out, block)

    def test_write_shape_mismatch_raises(self):
        array = make_array()
        with pytest.raises(ValueError):
            array.write("v", np.zeros((2, 3)), ((0, 2), (0, 2)))

    def test_region_outside_bounds_raises(self):
        array = make_array()
        with pytest.raises(ValueError):
            array.read("v", ((0, 9), (0, 8)))

    def test_empty_region_raises(self):
        array = make_array()
        with pytest.raises(ValueError):
            array.read("v", ((4, 4), (0, 8)))

    def test_wrong_dimensionality_raises(self):
        array = make_array()
        with pytest.raises(ValueError):
            array.read("v", ((0, 8),))

    def test_unknown_attribute_raises(self):
        array = make_array()
        with pytest.raises(Exception):
            array.read("nope")

    def test_dtype_coercion_on_write(self):
        array = make_array()
        array.write("v", np.arange(64, dtype="int32").reshape(8, 8))
        out, _ = array.read("v")
        assert out.dtype == np.dtype("float64")


class TestBookkeeping:
    def test_stored_chunks_counts_only_written(self):
        array = make_array()
        array.write("v", np.ones((4, 4)), ((0, 4), (0, 4)))
        assert array.stored_chunks("v") == 1

    def test_drop_removes_all_chunks(self):
        array = make_array()
        array.write("v", np.ones((8, 8)))
        array.drop()
        assert array.stored_chunks("v") == 0

    def test_cells_scanned_counts_chunk_cells(self):
        array = make_array()
        array.write("v", np.ones((8, 8)))
        _, stats = array.read("v", ((0, 1), (0, 1)))
        # One chunk read in full, even for a 1-cell region.
        assert stats.cells_scanned == 16


class TestHelpers:
    def test_full_region(self):
        array = make_array()
        assert full_region(array.schema) == ((0, 8), (0, 8))

    def test_region_cells(self):
        assert region_cells(((0, 4), (2, 8))) == 24


class TestViaDatabase:
    def test_database_write_read(self, db: Database):
        schema = ArraySchema(
            "B",
            attributes=(Attribute("v"),),
            dimensions=(Dimension("y", 0, 4, 2), Dimension("x", 0, 4, 2)),
        )
        db.create_array(schema)
        db.write("B", "v", np.eye(4))
        np.testing.assert_array_equal(db.read("B", "v"), np.eye(4))
