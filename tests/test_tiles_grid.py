"""Unit tests for bounds-checked grid geometry."""

import pytest

from repro.tiles.key import TileKey
from repro.tiles.moves import ALL_MOVES, Move
from repro.tiles.pyramid import TileGrid


class TestGeometry:
    def test_tiles_per_dim(self):
        grid = TileGrid(4)
        assert [grid.tiles_per_dim(level) for level in range(4)] == [1, 2, 4, 8]

    def test_tile_count(self):
        grid = TileGrid(3)
        assert grid.tile_count(2) == 16

    def test_total_tiles(self):
        assert TileGrid(3).total_tiles() == 1 + 4 + 16

    def test_level_out_of_range(self):
        with pytest.raises(ValueError):
            TileGrid(3).tiles_per_dim(3)

    def test_rejects_empty_pyramid(self):
        with pytest.raises(ValueError):
            TileGrid(0)

    def test_valid(self):
        grid = TileGrid(3)
        assert grid.valid(TileKey(0, 0, 0))
        assert grid.valid(TileKey(2, 3, 3))
        assert not grid.valid(TileKey(2, 4, 0))
        assert not grid.valid(TileKey(3, 0, 0))

    def test_keys_at_level_row_major(self):
        keys = list(TileGrid(2).keys_at_level(1))
        assert keys == [
            TileKey(1, 0, 0),
            TileKey(1, 1, 0),
            TileKey(1, 0, 1),
            TileKey(1, 1, 1),
        ]

    def test_all_keys_counts(self):
        grid = TileGrid(3)
        assert len(list(grid.all_keys())) == grid.total_tiles()


class TestMovement:
    def test_root_moves_are_zoom_ins_only(self):
        grid = TileGrid(3)
        moves = [m for m, _ in grid.available_moves(grid.root)]
        assert all(m.is_zoom_in for m in moves)
        assert len(moves) == 4

    def test_deepest_level_has_no_zoom_in(self):
        grid = TileGrid(3)
        moves = [m for m, _ in grid.available_moves(TileKey(2, 1, 1))]
        assert not any(m.is_zoom_in for m in moves)

    def test_interior_tile_move_count(self):
        grid = TileGrid(4)
        # Interior, mid-level: 4 pans + zoom out + 4 zoom ins.
        assert len(grid.available_moves(TileKey(2, 1, 1))) == 9

    def test_corner_loses_two_pans(self):
        grid = TileGrid(4)
        moves = [m for m, _ in grid.available_moves(TileKey(2, 0, 0))]
        assert Move.PAN_LEFT not in moves
        assert Move.PAN_UP not in moves
        assert Move.PAN_RIGHT in moves

    def test_apply_off_edge_is_none(self):
        grid = TileGrid(3)
        assert grid.apply(TileKey(1, 0, 0), Move.PAN_LEFT) is None

    def test_apply_zoom_out_at_root_is_none(self):
        grid = TileGrid(3)
        assert grid.apply(grid.root, Move.ZOOM_OUT) is None

    def test_apply_invalid_key_raises(self):
        grid = TileGrid(2)
        with pytest.raises(ValueError):
            grid.apply(TileKey(5, 0, 0), Move.PAN_LEFT)

    def test_apply_matches_available_moves(self):
        grid = TileGrid(3)
        for key in grid.all_keys():
            available = dict(grid.available_moves(key))
            for move in ALL_MOVES:
                target = grid.apply(key, move)
                if move in available:
                    assert target == available[move]
                else:
                    assert target is None


class TestCandidates:
    def test_interior_candidates_are_nine(self):
        grid = TileGrid(4)
        assert len(grid.candidates(TileKey(2, 1, 1))) == 9

    def test_candidates_exclude_self(self):
        grid = TileGrid(3)
        key = TileKey(1, 0, 0)
        assert key not in grid.candidates(key)

    def test_candidates_d1_are_one_move_away(self):
        grid = TileGrid(4)
        key = TileKey(2, 1, 1)
        neighbors = set(grid.neighbors(key))
        assert set(grid.candidates(key, d=1)) == neighbors

    def test_candidates_d2_superset_of_d1(self):
        grid = TileGrid(4)
        key = TileKey(2, 1, 1)
        d1 = set(grid.candidates(key, 1))
        d2 = set(grid.candidates(key, 2))
        assert d1 < d2

    def test_candidates_breadth_first(self):
        grid = TileGrid(4)
        key = TileKey(2, 1, 1)
        d1 = grid.candidates(key, 1)
        d2 = grid.candidates(key, 2)
        assert d2[: len(d1)] == d1

    def test_candidates_bad_distance(self):
        grid = TileGrid(2)
        with pytest.raises(ValueError):
            grid.candidates(TileKey(0, 0, 0), 0)
