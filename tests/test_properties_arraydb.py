"""Property-based tests on the array DBMS substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arraydb import ArraySchema, Attribute, Database, Dimension
from repro.arraydb import query as Q

SIDE = 8


def fresh_db(values: np.ndarray, chunk: int) -> Database:
    db = Database()
    schema = ArraySchema(
        "A",
        attributes=(Attribute("v"),),
        dimensions=(
            Dimension("y", 0, SIDE, chunk),
            Dimension("x", 0, SIDE, chunk),
        ),
    )
    db.create_array(schema)
    db.write("A", "v", values)
    return db


arrays = st.lists(
    st.floats(-100.0, 100.0, allow_nan=False), min_size=64, max_size=64
).map(lambda vals: np.asarray(vals).reshape(SIDE, SIDE))

chunks = st.sampled_from([1, 2, 4, 8, 3, 5])


@st.composite
def regions(draw):
    y0 = draw(st.integers(0, SIDE - 1))
    y1 = draw(st.integers(y0 + 1, SIDE))
    x0 = draw(st.integers(0, SIDE - 1))
    x1 = draw(st.integers(x0 + 1, SIDE))
    return ((y0, y1), (x0, x1))


class TestStorageProperties:
    @settings(max_examples=40, deadline=None)
    @given(arrays, chunks)
    def test_roundtrip_any_chunking(self, values, chunk):
        """Chunking is invisible: write then read returns the data."""
        db = fresh_db(values, chunk)
        np.testing.assert_array_equal(db.read("A", "v"), values)

    @settings(max_examples=40, deadline=None)
    @given(arrays, chunks, regions())
    def test_region_read_matches_slicing(self, values, chunk, region):
        db = fresh_db(values, chunk)
        (y0, y1), (x0, x1) = region
        out = db.read("A", "v", region)
        np.testing.assert_array_equal(out, values[y0:y1, x0:x1])

    @settings(max_examples=30, deadline=None)
    @given(arrays, chunks, regions())
    def test_subarray_query_matches_direct_read(self, values, chunk, region):
        """The pushdown-optimized query path agrees with direct reads."""
        db = fresh_db(values, chunk)
        result = db.execute(Q.subarray(Q.scan("A"), region))
        np.testing.assert_array_equal(
            result.attribute("v"), db.read("A", "v", region)
        )


class TestQueryProperties:
    @settings(max_examples=30, deadline=None)
    @given(arrays, chunks)
    def test_regrid_avg_preserves_mean(self, values, chunk):
        """Averaging windows preserves the global mean (even splits)."""
        db = fresh_db(values, chunk)
        result = db.execute(Q.regrid(Q.scan("A"), (2, 2)))
        np.testing.assert_allclose(
            result.attribute("v").mean(), values.mean(), rtol=1e-9
        )

    @settings(max_examples=30, deadline=None)
    @given(arrays, chunks)
    def test_regrid_sum_preserves_total(self, values, chunk):
        db = fresh_db(values, chunk)
        result = db.execute(Q.regrid(Q.scan("A"), (4, 4), "sum"))
        np.testing.assert_allclose(
            result.attribute("v").sum(), values.sum(), rtol=1e-9
        )

    @settings(max_examples=30, deadline=None)
    @given(arrays, chunks)
    def test_regrid_composition(self, values, chunk):
        """regrid(2,2) twice equals regrid(4,4) for averages."""
        db = fresh_db(values, chunk)
        once = db.execute(
            Q.regrid(Q.regrid(Q.scan("A"), (2, 2)), (2, 2))
        ).attribute("v")
        direct = db.execute(Q.regrid(Q.scan("A"), (4, 4))).attribute("v")
        np.testing.assert_allclose(once, direct, rtol=1e-9)

    @settings(max_examples=30, deadline=None)
    @given(arrays, chunks)
    def test_min_le_avg_le_max(self, values, chunk):
        db = fresh_db(values, chunk)
        low = db.execute(Q.regrid(Q.scan("A"), (2, 2), "min")).attribute("v")
        mid = db.execute(Q.regrid(Q.scan("A"), (2, 2), "avg")).attribute("v")
        high = db.execute(Q.regrid(Q.scan("A"), (2, 2), "max")).attribute("v")
        assert np.all(low <= mid + 1e-12)
        assert np.all(mid <= high + 1e-12)

    @settings(max_examples=30, deadline=None)
    @given(arrays, chunks)
    def test_store_then_scan_identity(self, values, chunk):
        db = fresh_db(values, chunk)
        db.execute(Q.store(Q.scan("A"), "B"))
        np.testing.assert_array_equal(
            db.execute(Q.scan("B")).attribute("v"), values
        )

    @settings(max_examples=30, deadline=None)
    @given(arrays, chunks)
    def test_aggregate_matches_numpy(self, values, chunk):
        db = fresh_db(values, chunk)
        for func, ref in (("avg", np.mean), ("sum", np.sum), ("max", np.max)):
            result = db.execute(Q.aggregate(Q.scan("A"), func, "v"))
            np.testing.assert_allclose(result.scalar, ref(values), rtol=1e-9)
