"""Unit tests for the signature provider and selection."""

import numpy as np
import pytest

from repro.signatures.base import SignatureRegistry
from repro.signatures.histogram import HistogramSignature
from repro.signatures.provider import SignatureProvider
from repro.signatures.selection import select_best_signature
from repro.signatures.stats import NormalSignature
from repro.tiles.key import TileKey
from repro.tiles.metadata import MetadataStore


@pytest.fixture
def cheap_provider(small_dataset):
    registry = SignatureRegistry((NormalSignature(), HistogramSignature()))
    return SignatureProvider(
        small_dataset.pyramid, registry, "ndsi_avg", MetadataStore()
    )


class TestProvider:
    def test_vector_computed_and_cached(self, cheap_provider):
        key = TileKey(1, 0, 0)
        first = cheap_provider.vector(key, "histogram")
        second = cheap_provider.vector(key, "histogram")
        np.testing.assert_array_equal(first, second)
        assert cheap_provider.store.compute_count == 1
        assert cheap_provider.store.hit_count == 1

    def test_unknown_signature(self, cheap_provider):
        with pytest.raises(KeyError):
            cheap_provider.vector(TileKey(0, 0, 0), "nope")

    def test_unknown_attribute_rejected(self, small_dataset):
        registry = SignatureRegistry((NormalSignature(),))
        with pytest.raises(ValueError):
            SignatureProvider(small_dataset.pyramid, registry, "nope")

    def test_distance_fns(self, cheap_provider):
        fns = cheap_provider.distance_fns()
        assert set(fns) == {"histogram", "normal"}
        assert fns["histogram"](np.ones(4), np.ones(4)) == 0.0

    def test_precompute_level_zero(self, cheap_provider):
        count = cheap_provider.precompute(
            keys=[TileKey(0, 0, 0)], names=["histogram"]
        )
        assert count == 1
        assert cheap_provider.store.has(TileKey(0, 0, 0), "histogram")


class TestSelection:
    def test_selects_a_registered_signature(self, cheap_provider, small_study):
        result = select_best_signature(
            cheap_provider, small_study.traces[:2], k=3
        )
        assert result.best in {"normal", "histogram"}
        assert set(result.scores) == {"normal", "histogram"}
        assert all(0.0 <= v <= 1.0 for v in result.scores.values())

    def test_empty_traces_rejected(self, cheap_provider):
        with pytest.raises(ValueError):
            select_best_signature(cheap_provider, [])

    def test_explicit_subset(self, cheap_provider, small_study):
        result = select_best_signature(
            cheap_provider, small_study.traces[:1], signature_names=["normal"], k=2
        )
        assert result.best == "normal"
