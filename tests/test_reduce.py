"""Tile reduction units: downsample, upsample, ancestor carving.

The progressive-fidelity machinery rests on these pure helpers; the
invariants pinned here are what the push and degraded-serving paths
assume — exact block means, shape round-trips, quadtree-exact carve
footprints, and strict input validation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.tiles.key import TileKey
from repro.tiles.reduce import (
    carve_fidelity,
    carve_from_ancestor,
    downsample_tile,
    reduction_fidelity,
    upsample_tile,
)
from repro.tiles.tile import DataTile


def tile(key: TileKey, size: int = 8, base: float = 0.0) -> DataTile:
    grid = np.arange(size * size, dtype=np.float64).reshape(size, size) + base
    return DataTile(key=key, attributes={"a": grid, "b": grid * 2.0})


class TestFactors:
    def test_reduction_fidelity(self):
        assert reduction_fidelity(2) == 0.5
        assert reduction_fidelity(4) == 0.25

    @pytest.mark.parametrize("bad", [1, 0, -2, 3, 6, 2.0, "4"])
    def test_bad_factor_rejected(self, bad):
        with pytest.raises(ValueError):
            reduction_fidelity(bad)


class TestDownsample:
    def test_block_means_and_shape(self):
        source = tile(TileKey(0, 0, 0), size=4)
        coarse = downsample_tile(source, 2)
        assert coarse.key == source.key
        assert coarse.shape == (2, 2)
        expected = source.attributes["a"].reshape(2, 2, 2, 2).mean(axis=(1, 3))
        np.testing.assert_allclose(coarse.attributes["a"], expected)
        np.testing.assert_allclose(
            coarse.attributes["b"], expected * 2.0
        )

    def test_dtype_preserved(self):
        grid = np.arange(16, dtype=np.float32).reshape(4, 4)
        coarse = downsample_tile(
            DataTile(key=TileKey(0, 0, 0), attributes={"a": grid}), 2
        )
        assert coarse.attributes["a"].dtype == np.float32

    def test_source_is_untouched(self):
        source = tile(TileKey(0, 0, 0), size=4)
        before = source.attributes["a"].copy()
        downsample_tile(source, 2)
        np.testing.assert_array_equal(source.attributes["a"], before)

    def test_indivisible_shape_rejected(self):
        with pytest.raises(ValueError, match="not divisible"):
            downsample_tile(tile(TileKey(0, 0, 0), size=4), 8)


class TestUpsample:
    def test_round_trips_shape(self):
        source = tile(TileKey(0, 0, 0), size=8)
        coarse = downsample_tile(source, 4)
        restored = upsample_tile(coarse, 4)
        assert restored.shape == source.shape
        assert restored.key == source.key

    def test_nearest_neighbor_blocks(self):
        grid = np.array([[1.0, 2.0], [3.0, 4.0]])
        up = upsample_tile(
            DataTile(key=TileKey(0, 0, 0), attributes={"a": grid}), 2
        )
        np.testing.assert_array_equal(
            up.attributes["a"][:2, :2], np.full((2, 2), 1.0)
        )
        np.testing.assert_array_equal(
            up.attributes["a"][2:, 2:], np.full((2, 2), 4.0)
        )


class TestCarve:
    def test_child_quadrants_are_exact(self):
        parent = tile(TileKey(1, 0, 1), size=8)
        for child in parent.key.children():
            carved = carve_from_ancestor(parent, child)
            assert carved.key == child
            assert carved.shape == parent.shape
            # The carved stand-in is the parent's sub-block, upsampled:
            # downsampling it back by the same factor recovers that
            # sub-block exactly (np.repeat blocks are constant).
            rx = child.x - (parent.key.x << 1)
            ry = child.y - (parent.key.y << 1)
            sub = parent.attributes["a"][
                ry * 4 : ry * 4 + 4, rx * 4 : rx * 4 + 4
            ]
            np.testing.assert_array_equal(
                downsample_tile(carved, 2).attributes["a"], sub
            )

    def test_depth_two_carve(self):
        ancestor = tile(TileKey(0, 0, 0), size=8)
        key = TileKey(2, 3, 1)
        carved = carve_from_ancestor(ancestor, key)
        assert carved.key == key
        assert carved.shape == ancestor.shape
        sub = ancestor.attributes["a"][2:4, 6:8]
        np.testing.assert_array_equal(
            downsample_tile(carved, 4).attributes["a"], sub
        )

    def test_non_ancestor_rejected(self):
        stranger = tile(TileKey(1, 1, 0), size=8)
        with pytest.raises(ValueError, match="does not contain"):
            carve_from_ancestor(stranger, TileKey(2, 0, 0))

    def test_same_level_rejected(self):
        peer = tile(TileKey(2, 0, 0), size=8)
        with pytest.raises(ValueError, match="not a proper ancestor"):
            carve_from_ancestor(peer, TileKey(2, 0, 0))

    def test_too_deep_for_shape_rejected(self):
        shallow = tile(TileKey(0, 0, 0), size=2)
        with pytest.raises(ValueError, match="cannot be split"):
            carve_from_ancestor(shallow, TileKey(3, 0, 0))

    def test_carve_fidelity(self):
        assert carve_fidelity(1, 2) == 0.5
        assert carve_fidelity(0, 2) == 0.25
        with pytest.raises(ValueError):
            carve_fidelity(2, 2)
