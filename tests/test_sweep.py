"""The parameter-sweep harness: spec validation, resume, gate.

Fast tier: everything here runs on tiny grids or injected fake cell
runners.  The end-to-end downscaled sweep (real serving stack, real
snapshot, real gate) lives in ``benchmarks/test_sweep_smoke.py`` behind
the ``bench`` marker.
"""

import json

import pytest

from repro.experiments.sweep import (
    BUILTIN_SPECS,
    CellResult,
    DuplicateCellError,
    EmptyGridError,
    SnapshotError,
    SweepSpec,
    SweepSpecError,
    Tolerances,
    UnknownParameterError,
    build_snapshot,
    compare_snapshots,
    find_snapshots,
    latest_snapshot,
    load_snapshot,
    resolve_spec,
    run_sweep,
    snapshot_filename,
    write_snapshot,
)
from repro.experiments.sweep.cli import main
from repro.experiments.sweep.run import (
    cell_path,
    load_cell_record,
    write_cell_record,
)


def tiny_spec(**overrides) -> SweepSpec:
    data = {
        "name": "tiny",
        "parameters": {
            "users": [1, 2],
            "cache_shards": [1, 4],
        },
        "fixed": {"size": 64, "tile_size": 8, "prefetch_mode": "sync"},
    }
    data.update(overrides)
    return SweepSpec.from_dict(data)


def fake_runner(calls=None):
    """A cell executor that fabricates metrics instead of serving."""

    def run(cell) -> CellResult:
        if calls is not None:
            calls.append(cell.cell_id)
        return CellResult(
            cell_id=cell.cell_id,
            params=dict(cell.params),
            metrics={
                "requests": 10,
                "hits": 9,
                "hit_rate": 0.9,
                "avg_ms": 120.0,
                "p50_ms": 20.0,
                "p95_ms": 984.0,
                "p99_ms": 984.0,
                "wall_seconds": 0.01,
                "throughput_rps": 1000.0,
                "registry_tiles": 0,
            },
        )

    return run


class TestSpecValidation:
    def test_unknown_parameter_axis(self):
        with pytest.raises(UnknownParameterError):
            SweepSpec.from_dict(
                {"name": "x", "parameters": {"warp_factor": [1]}}
            )

    def test_unknown_parameter_fixed(self):
        with pytest.raises(UnknownParameterError):
            SweepSpec.from_dict(
                {
                    "name": "x",
                    "parameters": {"users": [1]},
                    "fixed": {"warp_factor": 9},
                }
            )

    def test_empty_grid_no_axes(self):
        with pytest.raises(EmptyGridError):
            SweepSpec.from_dict({"name": "x", "parameters": {}})

    def test_empty_grid_empty_axis(self):
        with pytest.raises(EmptyGridError):
            SweepSpec.from_dict({"name": "x", "parameters": {"users": []}})

    def test_duplicate_cell(self):
        with pytest.raises(DuplicateCellError):
            SweepSpec.from_dict(
                {"name": "x", "parameters": {"users": [2, 2]}}
            )

    def test_axis_and_fixed_overlap(self):
        with pytest.raises(SweepSpecError):
            SweepSpec.from_dict(
                {
                    "name": "x",
                    "parameters": {"users": [1, 2]},
                    "fixed": {"users": 3},
                }
            )

    def test_domain_validation_applies_to_values(self):
        with pytest.raises(SweepSpecError):
            SweepSpec.from_dict(
                {"name": "x", "parameters": {"workload": ["nope"]}}
            )
        with pytest.raises(SweepSpecError):
            SweepSpec.from_dict({"name": "x", "parameters": {"users": [0]}})

    def test_typed_errors_are_value_errors(self):
        assert issubclass(UnknownParameterError, SweepSpecError)
        assert issubclass(EmptyGridError, SweepSpecError)
        assert issubclass(DuplicateCellError, SweepSpecError)
        assert issubclass(SweepSpecError, ValueError)

    def test_builtin_specs_validate(self):
        for name in BUILTIN_SPECS:
            spec = resolve_spec(name)
            assert spec.cells()

    def test_ci_spec_covers_roadmap_axes(self):
        spec = resolve_spec("ci")
        assert set(spec.parameters) == {
            "users",
            "prefetch_admission",
            "cache_shards",
            "shared_hotspots",
            "workload",
            "frontend",
        }
        assert len(spec.cells()) == 128

    def test_resolve_spec_from_file(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(tiny_spec().to_dict()))
        assert resolve_spec(path).cells() == tiny_spec().cells()

    def test_resolve_spec_unknown(self):
        with pytest.raises(SweepSpecError):
            resolve_spec("no-such-spec")

    def test_roundtrip(self):
        spec = tiny_spec()
        assert SweepSpec.from_dict(spec.to_dict()) == spec


class TestCellIds:
    def test_deterministic_and_sorted(self):
        cells = tiny_spec().cells()
        ids = [cell.cell_id for cell in cells]
        assert ids == sorted(ids)
        assert ids == [cell.cell_id for cell in tiny_spec().cells()]

    def test_slug_shape(self):
        ids = {cell.cell_id for cell in tiny_spec().cells()}
        assert "shards=1__users=1" in ids  # aliased + sorted axis names

    def test_filename_safe(self):
        spec = SweepSpec.from_dict(
            {
                "name": "x",
                "parameters": {
                    "hotspot_decay": [0.9, 1.0],
                    "settle": [True, False],
                },
            }
        )
        for cell in spec.cells():
            assert "/" not in cell.cell_id
            assert " " not in cell.cell_id
        ids = {cell.cell_id for cell in spec.cells()}
        assert "hotspot_decay=0.9__settle=on" in ids


class TestResume:
    def test_fresh_run_executes_everything(self, tmp_path):
        calls = []
        summary = run_sweep(tiny_spec(), tmp_path, runner=fake_runner(calls))
        assert len(calls) == 4
        assert summary.executed == sorted(calls)
        assert not summary.skipped

    def test_resume_skips_completed_and_is_byte_identical(self, tmp_path):
        spec = tiny_spec()
        run_sweep(spec, tmp_path, runner=fake_runner())
        before = {
            path.name: path.read_bytes() for path in tmp_path.glob("*.json")
        }
        calls = []
        summary = run_sweep(spec, tmp_path, runner=fake_runner(calls))
        after = {
            path.name: path.read_bytes() for path in tmp_path.glob("*.json")
        }
        assert calls == []  # nothing re-executed
        assert len(summary.skipped) == 4
        assert before == after  # untouched, not rewritten

    def test_interrupted_sweep_runs_only_missing_cells(self, tmp_path):
        spec = tiny_spec()
        cells = spec.cells()
        # Simulate an interrupt: only the first two cells completed.
        partial = fake_runner()
        for cell in cells[:2]:
            write_cell_record(
                cell_path(tmp_path, cell.cell_id),
                partial(cell).to_record(),
            )
        calls = []
        summary = run_sweep(spec, tmp_path, runner=fake_runner(calls))
        assert calls == [cell.cell_id for cell in cells[2:]]
        assert summary.skipped == [cell.cell_id for cell in cells[:2]]
        assert summary.total == 4

    def test_param_drift_invalidates_record(self, tmp_path):
        """A record whose fixed params no longer match is re-run — a
        stale results dir cannot poison a changed sweep."""
        spec = tiny_spec()
        run_sweep(spec, tmp_path, runner=fake_runner())
        drifted = SweepSpec.from_dict(
            {
                "name": "tiny",
                "parameters": {"users": [1, 2], "cache_shards": [1, 4]},
                "fixed": {"size": 64, "tile_size": 8, "prefetch_mode": "background"},
            }
        )
        calls = []
        summary = run_sweep(drifted, tmp_path, runner=fake_runner(calls))
        assert len(calls) == 4  # all re-run
        assert not summary.skipped

    def test_force_reruns_everything(self, tmp_path):
        spec = tiny_spec()
        run_sweep(spec, tmp_path, runner=fake_runner())
        calls = []
        run_sweep(spec, tmp_path, force=True, runner=fake_runner(calls))
        assert len(calls) == 4

    def test_corrupt_record_is_rerun(self, tmp_path):
        spec = tiny_spec()
        run_sweep(spec, tmp_path, runner=fake_runner())
        victim = cell_path(tmp_path, spec.cells()[0].cell_id)
        victim.write_text("{not json")
        calls = []
        run_sweep(spec, tmp_path, runner=fake_runner(calls))
        assert calls == [spec.cells()[0].cell_id]

    def test_load_cell_record_rejects_foreign_schema(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text(json.dumps({"schema_version": 99}))
        assert load_cell_record(path) is None


class TestSnapshot:
    def _snapshot(self, tmp_path, spec=None, **kwargs):
        spec = spec or tiny_spec()
        summary = run_sweep(spec, tmp_path, runner=fake_runner())
        return build_snapshot(
            spec, summary.results, git_sha="abc1234", **kwargs
        )

    def test_build_and_roundtrip(self, tmp_path):
        snapshot = self._snapshot(tmp_path / "r")
        assert snapshot["schema_version"] == 1
        assert len(snapshot["cells"]) == 4
        assert snapshot["spec"]["name"] == "tiny"
        assert snapshot["environment"]["python"]
        path = write_snapshot(snapshot, tmp_path / "traj")
        assert path.name == snapshot_filename(snapshot)
        assert path.name.startswith("BENCH_") and "abc1234" in path.name
        assert load_snapshot(path) == snapshot

    def test_missing_cells_rejected_unless_partial(self, tmp_path):
        spec = tiny_spec()
        summary = run_sweep(spec, tmp_path, runner=fake_runner())
        partial = summary.results[:2]
        with pytest.raises(SnapshotError):
            build_snapshot(spec, partial, git_sha="abc")
        snapshot = build_snapshot(
            spec, partial, git_sha="abc", allow_partial=True
        )
        assert len(snapshot["missing_cells"]) == 2

    def test_foreign_cells_rejected(self, tmp_path):
        spec = tiny_spec()
        summary = run_sweep(spec, tmp_path, runner=fake_runner())
        alien = CellResult("not-a-cell", {}, {})
        with pytest.raises(SnapshotError):
            build_snapshot(spec, summary.results + [alien], git_sha="abc")

    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "BENCH_2020-01-01_zzz.json"
        path.write_text(json.dumps({"hello": "world"}))
        with pytest.raises(SnapshotError):
            load_snapshot(path)

    def test_find_and_latest(self, tmp_path):
        spec = tiny_spec()
        summary = run_sweep(spec, tmp_path / "r", runner=fake_runner())
        older = build_snapshot(
            spec,
            summary.results,
            git_sha="aaa",
            created_utc="2026-01-01T00:00:00+00:00",
        )
        newer = build_snapshot(
            spec,
            summary.results,
            git_sha="bbb",
            created_utc="2026-02-01T00:00:00+00:00",
        )
        traj = tmp_path / "traj"
        write_snapshot(newer, traj)
        write_snapshot(older, traj)
        found = find_snapshots(traj)
        assert [p.name for p in found] == [
            "BENCH_2026-01-01_aaa.json",
            "BENCH_2026-02-01_bbb.json",
        ]
        assert latest_snapshot(traj).name == "BENCH_2026-02-01_bbb.json"
        assert latest_snapshot(tmp_path / "empty") is None


class TestCompare:
    def _snapshots(self, tmp_path):
        spec = tiny_spec()
        summary = run_sweep(spec, tmp_path, runner=fake_runner())
        base = build_snapshot(spec, summary.results, git_sha="base")
        current = json.loads(json.dumps(base))
        current["git_sha"] = "cur"
        return base, current

    def test_identical_snapshots_pass(self, tmp_path):
        base, current = self._snapshots(tmp_path)
        report = compare_snapshots(base, current)
        assert report.ok
        assert report.compared_cells == 4
        assert "OK" in report.render()

    def test_latency_regression_fails(self, tmp_path):
        base, current = self._snapshots(tmp_path)
        cell = next(iter(current["cells"]))
        current["cells"][cell]["metrics"]["p95_ms"] *= 2
        report = compare_snapshots(base, current)
        assert not report.ok
        assert report.regressions[0].metric == "p95_ms"
        assert "FAIL" in report.render()

    def test_hit_rate_drop_fails(self, tmp_path):
        base, current = self._snapshots(tmp_path)
        cell = next(iter(current["cells"]))
        current["cells"][cell]["metrics"]["hit_rate"] -= 0.05
        assert not compare_snapshots(base, current).ok

    def test_within_tolerance_passes(self, tmp_path):
        base, current = self._snapshots(tmp_path)
        for cell in current["cells"].values():
            cell["metrics"]["p95_ms"] *= 1.1  # < default +25%
            cell["metrics"]["hit_rate"] -= 0.01  # < default 0.02
        assert compare_snapshots(base, current).ok

    def test_absolute_slack_shields_tiny_baselines(self, tmp_path):
        base, current = self._snapshots(tmp_path)
        for cell in base["cells"].values():
            cell["metrics"]["p50_ms"] = 0.001
        for cell in current["cells"].values():
            cell["metrics"]["p50_ms"] = 0.9  # huge relative, < 1ms slack
        assert compare_snapshots(base, current).ok

    def test_throughput_drop_warns_not_fails(self, tmp_path):
        base, current = self._snapshots(tmp_path)
        for cell in current["cells"].values():
            cell["metrics"]["throughput_rps"] /= 10
        report = compare_snapshots(base, current)
        assert report.ok
        assert any("throughput" in w for w in report.warnings)

    def test_grid_changes_warn(self, tmp_path):
        base, current = self._snapshots(tmp_path)
        cell = next(iter(current["cells"]))
        del current["cells"][cell]
        report = compare_snapshots(base, current)
        assert report.ok
        assert any("baseline" in w for w in report.warnings)

    def test_improvements_reported(self, tmp_path):
        base, current = self._snapshots(tmp_path)
        for cell in current["cells"].values():
            cell["metrics"]["avg_ms"] /= 4
        report = compare_snapshots(base, current)
        assert report.ok
        assert report.improvements

    def test_tolerances_validated(self):
        with pytest.raises(ValueError):
            Tolerances(latency_increase=-0.1)
        with pytest.raises(ValueError):
            Tolerances(throughput_drop=2.0)


class TestCli:
    """Exit-code contract of the gate (what CI scripts rely on)."""

    def _bootstrap(self, tmp_path, monkeypatch, capsys):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(tiny_spec().to_dict()))
        return spec_path

    def test_cells_and_spec_errors(self, tmp_path, capsys):
        spec_path = tmp_path / "bad.json"
        spec_path.write_text(json.dumps({"name": "x", "parameters": {}}))
        assert main(["cells", "--spec", str(spec_path)]) == 2
        assert "error:" in capsys.readouterr().err
        assert main(["cells", "--spec", "smoke"]) == 0
        assert "smoke" in capsys.readouterr().out

    def test_run_snapshot_compare_roundtrip(
        self, tmp_path, monkeypatch, capsys
    ):
        # Patch the real cell runner out — the CLI contract under test
        # is wiring + exit codes, not the serving stack.
        import repro.experiments.sweep.cli as cli_module

        monkeypatch.setattr(
            cli_module,
            "run_sweep",
            lambda spec, results_dir, force=False, log=None: run_sweep(
                spec, results_dir, force=force, runner=fake_runner()
            ),
        )
        spec_path = self._bootstrap(tmp_path, monkeypatch, capsys)
        results = tmp_path / "results"
        traj = tmp_path / "traj"
        assert (
            main(["run", "--spec", str(spec_path), "--results-dir", str(results)])
            == 0
        )
        assert (
            main(
                [
                    "snapshot",
                    "--spec",
                    str(spec_path),
                    "--results-dir",
                    str(results),
                    "--out-dir",
                    str(traj),
                    "--git-sha",
                    "abc1234",
                ]
            )
            == 0
        )
        snapshots = list(traj.glob("BENCH_*.json"))
        assert len(snapshots) == 1

        # Self-compare (single committed snapshot) passes.
        assert (
            main(
                [
                    "compare",
                    "--baseline",
                    str(traj),
                    "--current",
                    str(traj),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "self-comparison" in out

        # A doctored regression fails with exit 1.
        doc = load_snapshot(snapshots[0])
        for cell in doc["cells"].values():
            cell["metrics"]["p99_ms"] *= 3
        doctored = tmp_path / "doctored.json"
        doctored.write_text(json.dumps(doc))
        assert (
            main(
                [
                    "compare",
                    "--baseline",
                    str(traj),
                    "--current",
                    str(doctored),
                ]
            )
            == 1
        )
        assert "FAIL" in capsys.readouterr().out

        # report renders markdown tables.
        assert main(["report", "--current", str(snapshots[0])]) == 0
        assert "| cell" in capsys.readouterr().out

    def test_compare_missing_snapshot_is_usage_error(self, tmp_path, capsys):
        assert (
            main(["compare", "--baseline", str(tmp_path), "--current", str(tmp_path)])
            == 2
        )
        assert "error:" in capsys.readouterr().err

    def test_snapshot_partial_guard(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(tiny_spec().to_dict()))
        empty = tmp_path / "none"
        assert (
            main(
                [
                    "snapshot",
                    "--spec",
                    str(spec_path),
                    "--results-dir",
                    str(empty),
                    "--out-dir",
                    str(tmp_path / "traj"),
                ]
            )
            == 2
        )
        assert "missing" in capsys.readouterr().err
