"""The socket transport: framing, handshake, isolation, and resilience.

Everything runs over loopback on ephemeral ports — no external network.
The resilience tests are the ones the paper's client/server split makes
load-bearing: a malformed frame, an oversized frame, a truncated frame,
or a client that vanishes mid-request must never poison the service or
any other client's session.
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading
import time

import pytest

from repro.core.allocation import SingleModelStrategy
from repro.core.engine import PredictionEngine
from repro.middleware.client import BrowsingSession
from repro.middleware.config import CacheConfig, PrefetchPolicy, ServiceConfig
from repro.middleware.net import (
    SocketTransport,
    ThreadedSocketServer,
)
from repro.middleware.protocol import (
    CloseSession,
    FrameDecoder,
    FramingError,
    FrameTooLargeError,
    InvalidRequestError,
    ProtocolError,
    SessionClosedError,
    SessionNotFoundError,
    TileRef,
    TileRequest,
    VersionMismatchError,
    encode_frame,
)
from repro.recommenders.momentum import MomentumRecommender
from repro.tiles.key import TileKey

CONFIG = ServiceConfig(prefetch=PrefetchPolicy(k=5))


def make_engine(grid) -> PredictionEngine:
    model = MomentumRecommender()
    return PredictionEngine(
        grid, {model.name: model}, SingleModelStrategy(model.name)
    )


@pytest.fixture
def server(small_dataset):
    with ThreadedSocketServer(
        small_dataset.pyramid,
        CONFIG,
        engine_factory=lambda: make_engine(small_dataset.pyramid.grid),
    ) as server:
        yield server


def raw_connection(server, timeout=10.0) -> socket.socket:
    sock = socket.create_connection(server.address, timeout=timeout)
    return sock


def send_line(sock, payload: dict) -> None:
    sock.sendall(json.dumps(payload).encode("utf-8") + b"\n")


def recv_lines(sock, count=1) -> list[dict]:
    decoder = FrameDecoder("lines")
    frames: list[str] = []
    while len(frames) < count:
        data = sock.recv(65536)
        if not data:
            break
        frames.extend(decoder.feed(data))
    return [json.loads(frame) for frame in frames]


def handshake(sock) -> dict:
    send_line(sock, {"type": "hello", "versions": [1]})
    (welcome,) = recv_lines(sock)
    assert welcome["type"] == "welcome"
    return welcome


def wait_for(predicate, timeout=10.0, interval=0.01) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


# ----------------------------------------------------------------------
# frame decoder units (the fuzz lives in test_properties.py)
# ----------------------------------------------------------------------
class TestFrameDecoder:
    @pytest.mark.parametrize("framing", ["lines", "length"])
    def test_single_frame_round_trip(self, framing):
        decoder = FrameDecoder(framing)
        assert decoder.feed(encode_frame('{"a": 1}', framing)) == ['{"a": 1}']

    @pytest.mark.parametrize("framing", ["lines", "length"])
    def test_byte_at_a_time_reassembly(self, framing):
        texts = ['{"a": 1}', '{"b": [2, 3]}', '{"c": "\\u00e9"}']
        stream = b"".join(encode_frame(t, framing) for t in texts)
        decoder = FrameDecoder(framing)
        out: list[str] = []
        for i in range(len(stream)):
            out.extend(decoder.feed(stream[i : i + 1]))
        assert out == texts
        assert decoder.buffered == 0

    def test_lines_skips_blank_keepalives(self):
        decoder = FrameDecoder("lines")
        assert decoder.feed(b"\n\r\n{\"a\": 1}\n\n") == ['{"a": 1}']

    def test_lines_oversized_unterminated(self):
        decoder = FrameDecoder("lines", max_frame_bytes=16)
        with pytest.raises(FrameTooLargeError):
            decoder.feed(b"A" * 17)

    def test_lines_oversized_terminated(self):
        decoder = FrameDecoder("lines", max_frame_bytes=16)
        with pytest.raises(FrameTooLargeError):
            decoder.feed(b"A" * 17 + b"\n")

    def test_length_oversized_header(self):
        decoder = FrameDecoder("length", max_frame_bytes=16)
        with pytest.raises(FrameTooLargeError):
            decoder.feed((17).to_bytes(4, "big"))

    def test_length_zero_frame_rejected(self):
        decoder = FrameDecoder("length")
        with pytest.raises(FramingError):
            decoder.feed((0).to_bytes(4, "big"))

    def test_truncated_length_frame_stays_buffered(self):
        decoder = FrameDecoder("length")
        frame = encode_frame('{"a": 1}', "length")
        assert decoder.feed(frame[:5]) == []
        assert decoder.buffered == 5
        assert decoder.feed(frame[5:]) == ['{"a": 1}']

    @pytest.mark.parametrize("framing", ["lines", "length"])
    def test_invalid_utf8_is_a_framing_error(self, framing):
        decoder = FrameDecoder(framing)
        bad = b"\xff\xfe\xfd"
        payload = (
            bad + b"\n" if framing == "lines"
            else len(bad).to_bytes(4, "big") + bad
        )
        with pytest.raises(FramingError):
            decoder.feed(payload)

    def test_decoder_refuses_input_after_failure(self):
        decoder = FrameDecoder("length", max_frame_bytes=16)
        with pytest.raises(FrameTooLargeError):
            decoder.feed((999).to_bytes(4, "big"))
        with pytest.raises(FramingError):
            decoder.feed(b"more")

    def test_embedded_newline_rejected_on_encode(self):
        with pytest.raises(FramingError):
            encode_frame('{"a":\n1}', "lines")
        # Length framing is binary-safe: embedded newlines are fine.
        decoder = FrameDecoder("length")
        assert decoder.feed(encode_frame('{"a":\n1}', "length")) == [
            '{"a":\n1}'
        ]

    def test_oversized_rejected_on_encode(self):
        with pytest.raises(FrameTooLargeError):
            encode_frame("A" * 32, "lines", max_frame_bytes=16)

    def test_unknown_framing_rejected(self):
        with pytest.raises(ValueError):
            FrameDecoder("pigeon")
        with pytest.raises(ValueError):
            encode_frame("x", "pigeon")


# ----------------------------------------------------------------------
# handshake and control envelope
# ----------------------------------------------------------------------
class TestHandshake:
    def test_welcome_reports_negotiated_version_and_limits(self, server):
        sock = raw_connection(server)
        welcome = handshake(sock)
        assert welcome["version"] == 1
        assert welcome["server"] == "forecache-repro"
        assert welcome["max_frame_bytes"] == CONFIG.max_frame_bytes
        sock.close()

    def test_client_exposes_handshake_results(self, server, small_dataset):
        with SocketTransport(
            *server.address, pyramid=small_dataset.pyramid
        ) as transport:
            assert transport.server_version == 1
            assert transport.server_name == "forecache-repro"
            assert transport.server_max_frame_bytes == CONFIG.max_frame_bytes

    def test_hello_picks_highest_common_version(self, server):
        sock = raw_connection(server)
        send_line(sock, {"type": "hello", "versions": [0, 1, 99]})
        (welcome,) = recv_lines(sock)
        assert welcome["version"] == 1
        sock.close()

    def test_version_mismatch_is_typed_and_fatal(self, server):
        sock = raw_connection(server)
        send_line(sock, {"type": "hello", "versions": [99]})
        (error,) = recv_lines(sock)
        assert error["type"] == "error"
        assert error["code"] == VersionMismatchError.code
        assert sock.recv(65536) == b""  # server hung up
        sock.close()

    def test_requests_before_hello_are_fatal(self, server):
        sock = raw_connection(server)
        send_line(sock, {"type": "open_session", "session_id": "sneaky"})
        (error,) = recv_lines(sock)
        assert error["code"] == InvalidRequestError.code
        assert "hello" in error["message"]
        assert sock.recv(65536) == b""
        sock.close()

    def test_unknown_fields_in_hello_are_tolerated(self, server):
        # Forward compatibility: a newer client may say more.
        sock = raw_connection(server)
        send_line(
            sock,
            {
                "type": "hello",
                "versions": [1],
                "client": "future",
                "compression": "zstd",
            },
        )
        (welcome,) = recv_lines(sock)
        assert welcome["type"] == "welcome"
        sock.close()

    def test_open_session_replies_session_info(self, server):
        sock = raw_connection(server)
        handshake(sock)
        send_line(sock, {"type": "open_session", "session_id": "s1"})
        (info,) = recv_lines(sock)
        assert info["type"] == "session_info"
        assert info["session_id"] == "s1"
        assert info["open"] is True
        assert info["requests"] == 0
        sock.close()

    def test_close_session_replies_final_snapshot(self, server, small_dataset):
        with SocketTransport(
            *server.address, pyramid=small_dataset.pyramid
        ) as transport:
            conn = transport.connect(session_id="s2")
            conn.handle_request(None, TileKey(0, 0, 0))
            reply = transport.roundtrip(CloseSession("s2"))
            assert reply.open is False
            assert reply.requests == 1


# ----------------------------------------------------------------------
# resilience: bad frames, bad peers
# ----------------------------------------------------------------------
class TestResilience:
    def test_malformed_frame_answered_and_connection_survives(self, server):
        sock = raw_connection(server)
        handshake(sock)
        sock.sendall(b"{not json\n")
        (error,) = recv_lines(sock)
        assert error["code"] == InvalidRequestError.code
        # Same connection still serves.
        send_line(sock, {"type": "open_session", "session_id": "after"})
        (info,) = recv_lines(sock)
        assert info["type"] == "session_info"
        sock.close()

    def test_oversized_frame_typed_error_then_close(self, server):
        sock = raw_connection(server)
        handshake(sock)
        sock.sendall(b"A" * (CONFIG.max_frame_bytes + 2))
        (error,) = recv_lines(sock)
        assert error["code"] == FrameTooLargeError.code
        assert sock.recv(65536) == b""
        sock.close()

    def test_oversized_frame_does_not_poison_other_clients(
        self, server, small_dataset
    ):
        with SocketTransport(
            *server.address, pyramid=small_dataset.pyramid
        ) as good:
            conn = good.connect()
            bad = raw_connection(server)
            handshake(bad)
            bad.sendall(b"B" * (CONFIG.max_frame_bytes + 2))
            (error,) = recv_lines(bad)
            assert error["code"] == FrameTooLargeError.code
            bad.close()
            # The well-behaved client's session is untouched.
            response = conn.handle_request(None, TileKey(0, 0, 0))
            assert response.tile.key == TileKey(0, 0, 0)

    def test_truncated_frame_then_disconnect_leaves_service_healthy(
        self, server, small_dataset
    ):
        sock = raw_connection(server)
        handshake(sock)
        # Half a length-prefixed frame... on a lines server this is an
        # unterminated line; either way: never completed.
        sock.sendall(b'{"type": "open_session"')
        sock.close()
        assert wait_for(lambda: server.server.connection_count == 0)
        with SocketTransport(
            *server.address, pyramid=small_dataset.pyramid
        ) as transport:
            conn = transport.connect()
            assert conn.handle_request(None, TileKey(0, 0, 0)).hit is False

    def test_disconnect_reaps_the_connections_sessions(
        self, server, small_dataset
    ):
        transport = SocketTransport(
            *server.address, pyramid=small_dataset.pyramid
        )
        transport.connect(session_id="doomed")
        service = server.server.service
        assert service.session_count == 1
        transport.close()  # no close_session — just vanish
        assert wait_for(lambda: service.session_count == 0)

    def test_mid_request_disconnect_leaves_service_healthy(
        self, small_dataset
    ):
        config = ServiceConfig(
            prefetch=PrefetchPolicy(k=5),
            cache=CacheConfig(backend_delay_seconds=0.2),
        )
        with ThreadedSocketServer(
            small_dataset.pyramid,
            config,
            engine_factory=lambda: make_engine(small_dataset.pyramid.grid),
        ) as server:
            sock = raw_connection(server)
            handshake(sock)
            send_line(sock, {"type": "open_session", "session_id": "ghost"})
            recv_lines(sock)
            send_line(
                sock,
                {"type": "tile_request", "session_id": "ghost",
                 "tile": [0, 0, 0], "move": None},
            )
            sock.close()  # vanish while the 200 ms backend query runs
            service = server.server.service
            assert wait_for(lambda: service.session_count == 0)
            # The service keeps serving new clients.
            with SocketTransport(
                *server.address, pyramid=small_dataset.pyramid
            ) as transport:
                conn = transport.connect()
                response = conn.handle_request(None, TileKey(0, 0, 0))
                # The doomed client's query already populated the cache.
                assert response.tile.key == TileKey(0, 0, 0)


# ----------------------------------------------------------------------
# per-connection session isolation
# ----------------------------------------------------------------------
class TestIsolation:
    def test_connections_cannot_touch_each_others_sessions(
        self, server, small_dataset
    ):
        with SocketTransport(
            *server.address, pyramid=small_dataset.pyramid
        ) as alice, SocketTransport(
            *server.address, pyramid=small_dataset.pyramid
        ) as mallory:
            alice.connect(session_id="alice")
            # Request against someone else's session: typed rejection.
            reply = mallory.roundtrip(
                TileRequest(
                    session_id="alice", tile=TileRef(0, 0, 0), move=None
                )
            )
            assert reply.to_exception().__class__ is SessionNotFoundError
            # Closing it is rejected the same way...
            reply = mallory.roundtrip(CloseSession("alice"))
            assert reply.to_exception().__class__ is SessionNotFoundError
            # ...and the session is still alive for its owner.
            assert server.server.service.session_count == 1

    def test_client_send_limit_clamps_to_server_advertisement(
        self, small_dataset
    ):
        """An over-budget request fails locally and recoverably instead
        of tripping the server's decoder (which hangs up and would take
        every session on the connection down)."""
        budget = 256 * 1024  # fits a ~71 KB tile response, not a 260 KB request
        config = ServiceConfig(
            prefetch=PrefetchPolicy(k=5), max_frame_bytes=budget
        )
        with ThreadedSocketServer(
            small_dataset.pyramid,
            config,
            engine_factory=lambda: make_engine(small_dataset.pyramid.grid),
        ) as server:
            with SocketTransport(
                *server.address, pyramid=small_dataset.pyramid
            ) as transport:
                assert transport.server_max_frame_bytes == budget
                assert transport._send_limit == budget  # clamped from 8 MiB
                conn = transport.connect()
                with pytest.raises(FrameTooLargeError):
                    transport.roundtrip(
                        TileRequest(
                            session_id="x" * (budget + 1024),
                            tile=TileRef(0, 0, 0),
                            move=None,
                        )
                    )
                # Local rejection: the connection is still perfectly
                # usable — nothing was sent, nothing desynced.
                response = conn.handle_request(None, TileKey(0, 0, 0))
                assert response.tile.key == TileKey(0, 0, 0)

    def test_small_client_limit_does_not_choke_on_large_replies(
        self, server, small_dataset
    ):
        """The handshake aligns the client's receive limit with the
        server's advertised budget, so a large-but-legal tile response
        (~71 KB of JSON here) never kills the connection even when the
        client was built with a tiny local limit."""
        with SocketTransport(
            *server.address, pyramid=small_dataset.pyramid,
            max_frame_bytes=8192,
        ) as transport:
            conn = transport.connect()
            response = conn.handle_request(None, TileKey(0, 0, 0))
            assert response.tile.key == TileKey(0, 0, 0)

    def test_failed_bind_surfaces_and_leaks_nothing(self, server, small_dataset):
        baseline = {
            t.name for t in threading.enumerate() if "forecache" in t.name
        }
        taken_port = server.address[1]
        doomed = ThreadedSocketServer(
            small_dataset.pyramid,
            CONFIG,
            engine_factory=lambda: make_engine(small_dataset.pyramid.grid),
            port=taken_port,
        )
        with pytest.raises(OSError):
            doomed.start()
        assert wait_for(lambda: not doomed._thread.is_alive())
        # The service built for the doomed server was torn down: no
        # stray bridge-pool or scheduler threads remain.
        leftover = {
            t.name for t in threading.enumerate() if "forecache" in t.name
        } - baseline
        assert leftover == set()

    def test_engine_argument_is_rejected(self, server, small_dataset):
        with SocketTransport(
            *server.address, pyramid=small_dataset.pyramid
        ) as transport:
            with pytest.raises(ValueError):
                transport.connect(make_engine(small_dataset.pyramid.grid))


# ----------------------------------------------------------------------
# concurrency and lifecycle
# ----------------------------------------------------------------------
class TestConcurrency:
    def test_concurrent_clients_replay_over_one_server(
        self, server, small_dataset, small_study
    ):
        traces = sorted(small_study.traces, key=len, reverse=True)[:4]
        results: dict[int, list] = {}
        errors: list[BaseException] = []

        def drive(index: int, trace) -> None:
            try:
                with SocketTransport(
                    *server.address, pyramid=small_dataset.pyramid
                ) as transport:
                    conn = transport.connect(session_id=f"user-{index}")
                    responses = BrowsingSession(conn).replay(trace)
                    conn.close()
                    results[index] = responses
            except BaseException as exc:  # surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=drive, args=(i, trace))
            for i, trace in enumerate(traces)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        assert len(results) == len(traces)
        for index, trace in enumerate(traces):
            assert [r.tile.key for r in results[index]] == trace.tiles()
        service = server.server.service
        assert wait_for(lambda: service.session_count == 0)

    def test_one_transport_multiplexes_many_sessions(
        self, server, small_dataset
    ):
        with SocketTransport(
            *server.address, pyramid=small_dataset.pyramid
        ) as transport:
            sessions = [transport.connect() for _ in range(4)]
            for conn in sessions:
                assert conn.handle_request(
                    None, TileKey(0, 0, 0)
                ).tile.key == TileKey(0, 0, 0)
            for conn in sessions:
                conn.close()
        assert wait_for(lambda: server.server.service.session_count == 0)

    def test_graceful_shutdown_drains_in_flight_request(self, small_dataset):
        config = ServiceConfig(
            prefetch=PrefetchPolicy(k=5),
            cache=CacheConfig(backend_delay_seconds=0.3),
        )
        server = ThreadedSocketServer(
            small_dataset.pyramid,
            config,
            engine_factory=lambda: make_engine(small_dataset.pyramid.grid),
        )
        server.start()
        transport = SocketTransport(
            *server.address, pyramid=small_dataset.pyramid
        )
        conn = transport.connect()
        response_box: list = []

        def slow_request() -> None:
            response_box.append(conn.handle_request(None, TileKey(2, 1, 1)))

        requester = threading.Thread(target=slow_request)
        requester.start()
        time.sleep(0.1)  # let the request reach the backend
        server.stop()  # must drain, not abort
        requester.join(timeout=30)
        assert response_box, "in-flight request was dropped on shutdown"
        assert response_box[0].tile.key == TileKey(2, 1, 1)
        transport.close()

    def test_recv_timeout_poisons_the_transport(self, small_dataset):
        """A timed-out roundtrip may leave its reply in flight; the
        strict request/reply pairing is gone, so the transport must
        close itself rather than serve request N+1 the reply to N."""
        config = ServiceConfig(
            prefetch=PrefetchPolicy(k=5),
            cache=CacheConfig(backend_delay_seconds=0.5),
        )
        with ThreadedSocketServer(
            small_dataset.pyramid,
            config,
            engine_factory=lambda: make_engine(small_dataset.pyramid.grid),
        ) as server:
            transport = SocketTransport(
                *server.address, pyramid=small_dataset.pyramid, timeout=0.1
            )
            conn = transport.connect()
            with pytest.raises(OSError):  # socket.timeout
                conn.handle_request(None, TileKey(0, 0, 0))
            # The stale reply must never answer a later request.
            with pytest.raises(SessionClosedError):
                conn.handle_request(None, TileKey(1, 0, 0))

    def test_cancelled_async_roundtrip_poisons_the_transport(
        self, small_dataset
    ):
        from repro.middleware.net import AsyncSocketTransport
        from repro.middleware.protocol import SessionClosedError as Closed

        config = ServiceConfig(
            prefetch=PrefetchPolicy(k=5),
            cache=CacheConfig(backend_delay_seconds=0.4),
        )
        with ThreadedSocketServer(
            small_dataset.pyramid,
            config,
            engine_factory=lambda: make_engine(small_dataset.pyramid.grid),
        ) as server:

            async def scenario():
                transport = await AsyncSocketTransport.open(
                    *server.address, pyramid=small_dataset.pyramid
                )
                conn = await transport.connect()
                with pytest.raises(asyncio.TimeoutError):
                    await asyncio.wait_for(
                        conn.request(None, TileKey(0, 0, 0)), timeout=0.05
                    )
                # The cancelled request's reply is still in flight; the
                # transport refuses to hand it to the next request.
                with pytest.raises(Closed):
                    await conn.request(None, TileKey(1, 0, 0))
                await transport.aclose()

            asyncio.run(scenario())

    def test_threaded_server_stop_is_idempotent(self, small_dataset):
        server = ThreadedSocketServer(
            small_dataset.pyramid,
            CONFIG,
            engine_factory=lambda: make_engine(small_dataset.pyramid.grid),
        )
        server.start()
        server.stop()
        server.stop()

    def test_transport_after_server_shutdown_raises_typed(
        self, small_dataset
    ):
        server = ThreadedSocketServer(
            small_dataset.pyramid,
            CONFIG,
            engine_factory=lambda: make_engine(small_dataset.pyramid.grid),
        )
        server.start()
        transport = SocketTransport(
            *server.address, pyramid=small_dataset.pyramid
        )
        conn = transport.connect()
        server.stop()
        # Depending on RST timing the failure surfaces as the typed
        # "server closed the connection" ProtocolError or as the raw
        # socket error — never as a hang or a bogus response.
        with pytest.raises((ProtocolError, OSError)):
            conn.handle_request(None, TileKey(0, 0, 0))
        transport.close()


class TestAsyncServerInOneLoop:
    """The server used natively from a single event loop (no thread)."""

    def test_server_and_client_share_a_loop(self, small_dataset):
        from repro.middleware.aio import AsyncForeCacheService
        from repro.middleware.client import AsyncBrowsingSession
        from repro.middleware.net import (
            AsyncSocketTransport,
            ForeCacheSocketServer,
        )

        async def scenario():
            service = AsyncForeCacheService.build(
                small_dataset.pyramid,
                CONFIG,
                engine_factory=lambda: make_engine(
                    small_dataset.pyramid.grid
                ),
            )
            async with ForeCacheSocketServer(
                service, owns_service=True
            ) as server:
                async with await AsyncSocketTransport.open(
                    *server.address, pyramid=small_dataset.pyramid
                ) as transport:
                    conn = await transport.connect()
                    session = AsyncBrowsingSession(conn)
                    response = await session.start()
                    assert response.tile.key == small_dataset.pyramid.grid.root
                    await conn.close()
            assert server.connection_count == 0

        asyncio.run(scenario())
