"""Unit tests for the nine-move vocabulary."""

import pytest

from repro.tiles.moves import (
    ALL_MOVES,
    Move,
    MoveCategory,
    PAN_MOVES,
    PAN_OFFSETS,
    ZOOM_IN_MOVES,
    ZOOM_IN_OFFSETS,
    move_from_string,
    pan_move_for_offset,
    zoom_in_move_for_quadrant,
)


class TestVocabulary:
    def test_exactly_nine_moves(self):
        """The interface supports nine moves — k=9 guarantees a hit."""
        assert len(ALL_MOVES) == 9
        assert len(set(ALL_MOVES)) == 9

    def test_partition(self):
        assert len(PAN_MOVES) == 4
        assert len(ZOOM_IN_MOVES) == 4
        assert Move.ZOOM_OUT not in PAN_MOVES | ZOOM_IN_MOVES

    def test_categories(self):
        assert Move.PAN_LEFT.category is MoveCategory.PAN
        assert Move.ZOOM_IN_NW.category is MoveCategory.ZOOM_IN
        assert Move.ZOOM_OUT.category is MoveCategory.ZOOM_OUT

    def test_flags(self):
        assert Move.PAN_UP.is_pan
        assert not Move.PAN_UP.is_zoom_in
        assert Move.ZOOM_IN_SE.is_zoom_in
        assert Move.ZOOM_OUT.is_zoom_out


class TestOffsets:
    def test_pan_offsets_unique(self):
        assert len(set(PAN_OFFSETS.values())) == 4

    def test_zoom_in_offsets_cover_quadrants(self):
        assert set(ZOOM_IN_OFFSETS.values()) == {(0, 0), (0, 1), (1, 0), (1, 1)}

    def test_quadrant_roundtrip(self):
        for move, (dx, dy) in ZOOM_IN_OFFSETS.items():
            assert zoom_in_move_for_quadrant(dx, dy) is move

    def test_pan_roundtrip(self):
        for move, (dx, dy) in PAN_OFFSETS.items():
            assert pan_move_for_offset(dx, dy) is move

    def test_bad_quadrant(self):
        with pytest.raises(ValueError):
            zoom_in_move_for_quadrant(2, 0)

    def test_bad_pan_offset(self):
        with pytest.raises(ValueError):
            pan_move_for_offset(1, 1)


class TestSerialization:
    def test_roundtrip_all(self):
        for move in ALL_MOVES:
            assert move_from_string(move.value) is move

    def test_unknown_string(self):
        with pytest.raises(ValueError):
            move_from_string("teleport")

    def test_str(self):
        assert str(Move.PAN_LEFT) == "pan_left"
