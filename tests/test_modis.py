"""Unit tests for the synthetic MODIS world, NDSI pipeline, and dataset."""

import numpy as np
import pytest

from repro.arraydb import ArraySchema, Attribute, Dimension
from repro.modis.dataset import MODISDataset, NDSI_ATTRIBUTES, _cluster_mass
from repro.modis.ndsi import ndsi_func, register_ndsi, run_ndsi_query
from repro.modis.regions import DEFAULT_TASKS, MountainRange, TaskSpec
from repro.modis.synth import SyntheticWorld, ValueNoise
from repro.tiles.key import TileKey


class TestValueNoise:
    def test_range(self):
        field = ValueNoise(seed=1).sample(64)
        assert field.min() >= 0.0
        assert field.max() <= 1.0

    def test_deterministic(self):
        a = ValueNoise(seed=3, octaves=3).sample(32)
        b = ValueNoise(seed=3, octaves=3).sample(32)
        np.testing.assert_array_equal(a, b)

    def test_seed_changes_field(self):
        a = ValueNoise(seed=1).sample(32)
        b = ValueNoise(seed=2).sample(32)
        assert not np.array_equal(a, b)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            ValueNoise(seed=1, octaves=0)
        with pytest.raises(ValueError):
            ValueNoise(seed=1, base_frequency=0)
        with pytest.raises(ValueError):
            ValueNoise(seed=1).sample(0)


class TestSyntheticWorld:
    def test_elevation_peaks_on_ranges(self):
        world = SyntheticWorld(seed=7)
        elev = world.elevation(256)
        # Sample the Alps area vs open Pacific.
        alps = elev[int(0.28 * 256), int(0.53 * 256)]
        ocean = elev[int(0.5 * 256), int(0.02 * 256)]
        assert alps > ocean + 0.3

    def test_land_mask_binary(self):
        world = SyntheticWorld(seed=7)
        mask = world.land_mask(128)
        assert set(np.unique(mask)) <= {0.0, 1.0}

    def test_no_snow_on_ocean(self):
        world = SyntheticWorld(seed=7)
        snow = world.snow_fraction(128)
        land = world.land_mask(128)
        assert np.all(snow[land == 0.0] == 0.0)

    def test_terrain_cached(self):
        world = SyntheticWorld(seed=7)
        a = world.elevation(64)
        b = world.elevation(64)
        assert a is b

    def test_days_differ_but_terrain_holds(self):
        world = SyntheticWorld(seed=7)
        day0 = world.snow_fraction(128, day=0)
        day1 = world.snow_fraction(128, day=1)
        assert not np.array_equal(day0, day1)
        # Same mountains: snowy regions overlap heavily.
        overlap = ((day0 > 0.5) & (day1 > 0.5)).sum()
        assert overlap > 0.5 * min((day0 > 0.5).sum(), (day1 > 0.5).sum())

    def test_bands_anticorrelated_on_snow(self):
        world = SyntheticWorld(seed=7)
        vis, swir = world.bands(128)
        snow = world.snow_fraction(128)
        snowy = snow > 0.8
        if snowy.any():
            assert vis[snowy].mean() > swir[snowy].mean()


class TestNDSI:
    def test_ndsi_range(self):
        rng = np.random.default_rng(0)
        vis = rng.random((8, 8)) + 0.01
        swir = rng.random((8, 8)) + 0.01
        out = ndsi_func(vis, swir)
        assert np.all(out <= 1.0)
        assert np.all(out >= -1.0)

    def test_ndsi_snow_positive(self):
        assert ndsi_func(np.asarray([0.8]), np.asarray([0.1]))[0] > 0.7

    def test_ndsi_zero_bands(self):
        assert ndsi_func(np.asarray([0.0]), np.asarray([0.0]))[0] == 0.0

    def test_register_idempotent(self):
        from repro.arraydb.functions import FunctionRegistry

        registry = FunctionRegistry()
        register_ndsi(registry)
        register_ndsi(registry)
        assert "ndsi_func" in registry

    def test_query1_pipeline(self, db):
        """The paper's Query 1: store(apply(join(VIS, SWIR), ndsi...))."""
        side = 8
        for name in ("S_VIS", "S_SWIR"):
            schema = ArraySchema(
                name,
                attributes=(Attribute("reflectance"),),
                dimensions=(
                    Dimension("y", 0, side, side),
                    Dimension("x", 0, side, side),
                ),
            )
            db.create_array(schema)
        vis = np.full((side, side), 0.8)
        swir = np.full((side, side), 0.2)
        db.write("S_VIS", "reflectance", vis)
        db.write("S_SWIR", "reflectance", swir)
        out = run_ndsi_query(db, "S_VIS", "S_SWIR", "NDSI")
        result = db.read(out, "ndsi")
        np.testing.assert_allclose(result, np.full((side, side), 0.6))


class TestTaskSpec:
    def test_target_level(self):
        task = TaskSpec(1, "t", (0.1, 0.1, 0.2, 0.2), target_depth=1, ndsi_threshold=0.5)
        assert task.target_level(7) == 5

    def test_target_level_too_shallow(self):
        task = TaskSpec(1, "t", (0.1, 0.1, 0.2, 0.2), target_depth=5, ndsi_threshold=0.5)
        with pytest.raises(ValueError):
            task.target_level(3)

    def test_contains(self):
        task = TaskSpec(1, "t", (0.1, 0.1, 0.3, 0.4), target_depth=0, ndsi_threshold=0.5)
        assert task.contains(0.2, 0.2)
        assert not task.contains(0.5, 0.2)

    def test_rejects_bad_bbox(self):
        with pytest.raises(ValueError):
            TaskSpec(1, "t", (0.5, 0.1, 0.3, 0.4), target_depth=0, ndsi_threshold=0.5)

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            TaskSpec(
                1, "t", (0.1, 0.1, 0.3, 0.4),
                target_depth=0, ndsi_threshold=0.5, min_fraction=0.0,
            )

    def test_default_tasks_match_paper(self):
        assert [t.task_id for t in DEFAULT_TASKS] == [1, 2, 3]
        assert DEFAULT_TASKS[1].ndsi_threshold == pytest.approx(0.50)
        assert DEFAULT_TASKS[2].ndsi_threshold == pytest.approx(0.25)


class TestMountainRange:
    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            MountainRange("r", 0, 0, 1, 1, width=0.0, height=1.0)
        with pytest.raises(ValueError):
            MountainRange("r", 0, 0, 1, 1, width=0.1, height=0.0)


class TestClusterMass:
    def test_empty_mask(self):
        assert _cluster_mass(np.zeros((8, 8), dtype=bool)) == 0.0

    def test_single_large_cluster(self):
        mask = np.zeros((8, 8), dtype=bool)
        mask[2:6, 2:6] = True
        assert _cluster_mass(mask) == pytest.approx(16 / 64)

    def test_speckle_ignored(self):
        mask = np.zeros((8, 8), dtype=bool)
        mask[0, 0] = True
        mask[4, 4] = True
        mask[7, 7] = True
        assert _cluster_mass(mask) == 0.0


class TestMODISDataset:
    def test_attributes(self, tiny_dataset):
        assert tiny_dataset.pyramid.attributes == NDSI_ATTRIBUTES

    def test_levels(self, tiny_dataset):
        assert tiny_dataset.num_levels == 3

    def test_ndsi_bounds(self, tiny_dataset):
        tile = tiny_dataset.pyramid.fetch_tile(TileKey(0, 0, 0), charge=False)
        ndsi = tile.attribute("ndsi_avg")
        assert ndsi.min() >= -1.0
        assert ndsi.max() <= 1.0

    def test_min_below_max(self, small_dataset):
        tile = small_dataset.pyramid.fetch_tile(TileKey(2, 1, 1), charge=False)
        assert np.all(
            tile.attribute("ndsi_min") <= tile.attribute("ndsi_max") + 1e-12
        )

    def test_task_lookup(self, tiny_dataset):
        assert tiny_dataset.task(2).name == "europe_snow"
        with pytest.raises(KeyError):
            tiny_dataset.task(9)

    def test_tiles_overlapping_full_bbox(self, tiny_dataset):
        keys = tiny_dataset.tiles_overlapping((0.0, 0.0, 1.0, 1.0), 2)
        assert len(keys) == 16

    def test_tiles_overlapping_clipped(self, tiny_dataset):
        keys = tiny_dataset.tiles_overlapping((0.0, 0.0, 0.49, 0.49), 1)
        assert keys == [TileKey(1, 0, 0)]

    def test_each_task_is_satisfiable(self, small_dataset):
        """Every task must have at least tiles_to_find qualifying tiles."""
        for task in small_dataset.tasks:
            level = task.target_level(small_dataset.num_levels)
            keys = small_dataset.tiles_overlapping(task.bbox, level)
            satisfying = [
                k for k in keys if small_dataset.satisfies_task(k, task)
            ]
            assert len(satisfying) >= task.tiles_to_find, task.name

    def test_satisfies_requires_target_level(self, small_dataset):
        task = small_dataset.task(1)
        level = task.target_level(small_dataset.num_levels)
        keys = small_dataset.tiles_overlapping(task.bbox, level)
        satisfying = [k for k in keys if small_dataset.satisfies_task(k, task)]
        parent = satisfying[0].parent
        assert not small_dataset.satisfies_task(parent, task)

    def test_quadrant_snow_keys(self, tiny_dataset):
        quadrants = tiny_dataset.quadrant_snow(TileKey(0, 0, 0), 0.0)
        assert set(quadrants) == {(0, 0), (0, 1), (1, 0), (1, 1)}
        assert all(0.0 <= v <= 1.0 for v in quadrants.values())

    def test_edge_snow_keys(self, tiny_dataset):
        edges = tiny_dataset.edge_snow(TileKey(0, 0, 0), 0.0)
        assert set(edges) == {"left", "right", "up", "down"}

    def test_saliency_bounded(self, small_dataset):
        for key in [TileKey(0, 0, 0), TileKey(2, 1, 1)]:
            assert 0.0 <= small_dataset.saliency(key, 0.3) <= 1.0

    def test_snow_fraction_monotone_in_threshold(self, small_dataset):
        key = TileKey(2, 1, 1)
        low = small_dataset.snow_fraction(key, 0.0)
        high = small_dataset.snow_fraction(key, 0.5)
        assert high <= low

    def test_deterministic_build(self):
        a = MODISDataset.build(size=128, tile_size=32, days=1, seed=3)
        b = MODISDataset.build(size=128, tile_size=32, days=1, seed=3)
        ta = a.pyramid.fetch_tile(TileKey(1, 1, 0), charge=False)
        tb = b.pyramid.fetch_tile(TileKey(1, 1, 0), charge=False)
        assert ta == tb
