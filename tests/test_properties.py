"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.lru import LRUCache
from repro.core.roi import ROITracker
from repro.middleware import protocol as protocol_module
from repro.recommenders.smoothing import KneserNeyEstimator
from repro.signatures.distance import chi_squared_distance, weighted_l2
from repro.signatures.histogram import HistogramSignature
from repro.tiles.key import TileKey
from repro.tiles.moves import ALL_MOVES
from repro.tiles.pyramid import TileGrid
from repro.tiles.tile import DataTile

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
MAX_LEVEL = 5


@st.composite
def tile_keys(draw, max_level: int = MAX_LEVEL):
    level = draw(st.integers(0, max_level))
    n = 2**level
    x = draw(st.integers(0, n - 1))
    y = draw(st.integers(0, n - 1))
    return TileKey(level, x, y)


moves = st.sampled_from(ALL_MOVES)
histograms = st.lists(
    st.floats(0.0, 1.0, allow_nan=False), min_size=2, max_size=16
).map(np.asarray)


# ----------------------------------------------------------------------
# tile geometry invariants
# ----------------------------------------------------------------------
class TestKeyProperties:
    @given(tile_keys())
    def test_children_roundtrip_through_parent(self, key):
        for child in key.children():
            assert child.parent == key
            assert key.contains(child)

    @given(tile_keys(max_level=4), moves)
    def test_moves_are_invertible(self, key, move):
        grid = TileGrid(6)
        target = grid.apply(key, move)
        if target is not None:
            back = target.move_to(key)
            assert back is not None
            assert grid.apply(target, back) == key

    @given(tile_keys(), tile_keys())
    def test_manhattan_symmetric_nonnegative(self, a, b):
        assert a.manhattan_distance(b) == b.manhattan_distance(a)
        assert a.manhattan_distance(b) >= 0
        assert a.manhattan_distance(a) == 0

    @given(tile_keys())
    def test_serialization_roundtrip(self, key):
        assert TileKey.from_string(key.to_string()) == key

    @given(tile_keys())
    def test_normalized_bounds_contain_center(self, key):
        x0, y0, x1, y1 = key.normalized_bounds()
        cx, cy = key.normalized_center()
        assert x0 < cx < x1
        assert y0 < cy < y1
        assert 0.0 <= x0 < x1 <= 1.0

    @given(tile_keys(max_level=4))
    def test_candidate_set_bounded_by_nine(self, key):
        grid = TileGrid(6)
        candidates = grid.candidates(key, 1)
        assert 1 <= len(candidates) <= 9
        assert key not in candidates
        # Every candidate is exactly one legal move away.
        for candidate in candidates:
            assert key.move_to(candidate) is not None

    @given(tile_keys(max_level=3), st.integers(1, 3))
    def test_candidates_monotone_in_distance(self, key, d):
        grid = TileGrid(5)
        smaller = set(grid.candidates(key, d))
        larger = set(grid.candidates(key, d + 1))
        assert smaller <= larger


# ----------------------------------------------------------------------
# distance invariants
# ----------------------------------------------------------------------
class TestDistanceProperties:
    @given(histograms)
    def test_chi_squared_identity(self, vec):
        assert chi_squared_distance(vec, vec) == 0.0

    @given(st.integers(2, 16), st.data())
    def test_chi_squared_symmetry(self, size, data):
        a = np.asarray(
            data.draw(st.lists(st.floats(0, 1), min_size=size, max_size=size))
        )
        b = np.asarray(
            data.draw(st.lists(st.floats(0, 1), min_size=size, max_size=size))
        )
        assert chi_squared_distance(a, b) == chi_squared_distance(b, a)
        assert chi_squared_distance(a, b) >= 0.0

    @given(st.lists(st.floats(0, 10), min_size=1, max_size=8))
    def test_weighted_l2_nonnegative(self, distances):
        assert weighted_l2(distances) >= 0.0

    @given(
        st.lists(
            # Subnormals excluded: at 5e-324 one ulp is 50% relative
            # error, so no rescaling can preserve homogeneity there.
            st.floats(0.0, 5.0, allow_subnormal=False),
            min_size=1,
            max_size=8,
        )
    )
    def test_weighted_l2_absolutely_homogeneous(self, distances):
        doubled = [2.0 * d for d in distances]
        np.testing.assert_allclose(
            weighted_l2(doubled), 2.0 * weighted_l2(distances), rtol=1e-9
        )


# ----------------------------------------------------------------------
# signature invariants
# ----------------------------------------------------------------------
class TestSignatureProperties:
    @given(
        st.lists(
            st.floats(-1.0, 1.0, allow_nan=False), min_size=16, max_size=16
        )
    )
    def test_histogram_mass_and_bounds(self, values):
        tile = DataTile(
            key=TileKey(0, 0, 0),
            attributes={"v": np.asarray(values).reshape(4, 4)},
        )
        vec = HistogramSignature(bins=8).compute(tile, "v")
        assert vec.min() >= 0.0
        assert vec.sum() == 1.0 or abs(vec.sum() - 1.0) < 1e-9


# ----------------------------------------------------------------------
# Kneser-Ney invariants
# ----------------------------------------------------------------------
class TestSmoothingProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.lists(st.sampled_from("abc"), min_size=2, max_size=12),
            min_size=1,
            max_size=5,
        ),
        st.lists(st.sampled_from("abc"), min_size=0, max_size=4),
    )
    def test_distribution_is_probability(self, sequences, context):
        estimator = KneserNeyEstimator(order=2, vocabulary=("a", "b", "c"))
        estimator.fit(sequences)
        dist = estimator.distribution(tuple(context))
        total = sum(dist.values())
        assert abs(total - 1.0) < 1e-9
        assert all(p > 0.0 for p in dist.values())


# ----------------------------------------------------------------------
# ROI tracker invariants (Algorithm 1)
# ----------------------------------------------------------------------
class TestROIProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(moves, min_size=0, max_size=40), st.randoms(use_true_random=False))
    def test_roi_only_changes_on_zoom_out(self, move_list, rng):
        """The committed ROI changes only when a zoom-out commits it."""
        grid = TileGrid(5)
        tracker = ROITracker()
        current = TileKey(2, 1, 1)
        previous_roi = tracker.roi
        for move in move_list:
            target = grid.apply(current, move)
            if target is None:
                continue
            current = target
            roi = tracker.update(move, current)
            if move.is_zoom_out:
                previous_roi = roi
            else:
                assert roi == previous_roi
        # ROI tiles, if any, were actually visited while collecting.
        assert len(set(tracker.roi)) == len(tracker.roi)


# ----------------------------------------------------------------------
# LRU invariants
# ----------------------------------------------------------------------
class TestLRUProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        st.integers(1, 8),
        st.lists(st.tuples(st.sampled_from("abcdefgh"), st.booleans()), max_size=60),
    )
    def test_capacity_never_exceeded(self, capacity, operations):
        cache = LRUCache(capacity)
        for key, is_put in operations:
            if is_put:
                cache.put(key, key)
            else:
                cache.get(key)
            assert len(cache) <= capacity

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.sampled_from("abcd"), min_size=1, max_size=30))
    def test_most_recent_put_always_present(self, keys):
        cache = LRUCache(2)
        for key in keys:
            cache.put(key, key)
            assert key in cache


# ----------------------------------------------------------------------
# wire-framing invariants
# ----------------------------------------------------------------------
framings = st.sampled_from(["lines", "length"])


@st.composite
def tile_requests(draw):
    key = draw(tile_keys())
    return protocol_module.TileRequest(
        session_id=draw(st.text("abcdefgh-123", min_size=1, max_size=8)),
        tile=protocol_module.TileRef.from_key(key),
        move=draw(st.sampled_from([None, "pan_right", "zoom_out", "pan_up"])),
    )


def _feed_chunked(decoder, stream: bytes, sizes: list[int]) -> list[str]:
    """Feed ``stream`` cut into the given chunk sizes (cycled)."""
    frames: list[str] = []
    start = 0
    index = 0
    while start < len(stream):
        size = sizes[index % len(sizes)] if sizes else len(stream)
        frames.extend(decoder.feed(stream[start : start + size]))
        start += size
        index += 1
    return frames


class TestFramingProperties:
    """The fuzz bar: the decoder never fails untyped, and valid frames
    split at arbitrary byte boundaries always reassemble exactly."""

    @settings(max_examples=200, deadline=None)
    @given(
        data=st.binary(max_size=512),
        framing=framings,
        sizes=st.lists(st.integers(1, 64), max_size=8),
    )
    def test_garbage_never_crashes_untyped(self, data, framing, sizes):
        decoder = protocol_module.FrameDecoder(framing, max_frame_bytes=256)
        try:
            frames = _feed_chunked(decoder, data, sizes)
        except protocol_module.FramingError:
            return  # a typed framing rejection is a pass
        # Whatever came out is text; decoding it either yields a wire
        # message or the typed malformed-message error — nothing else.
        for text in frames:
            try:
                protocol_module.decode(text)
            except protocol_module.InvalidRequestError:
                pass

    @settings(max_examples=100, deadline=None)
    @given(
        messages=st.lists(tile_requests(), min_size=1, max_size=5),
        framing=framings,
        sizes=st.lists(st.integers(1, 16), max_size=8),
    )
    def test_valid_frames_reassemble_exactly(self, messages, framing, sizes):
        texts = [protocol_module.encode(m) for m in messages]
        stream = b"".join(
            protocol_module.encode_frame(t, framing) for t in texts
        )
        decoder = protocol_module.FrameDecoder(framing)
        frames = _feed_chunked(decoder, stream, sizes)
        assert frames == texts
        assert [protocol_module.decode(t) for t in frames] == messages
        assert decoder.buffered == 0

    @settings(max_examples=100, deadline=None)
    @given(
        prefix=st.lists(tile_requests(), min_size=1, max_size=3),
        garbage=st.binary(min_size=1, max_size=64),
        framing=framings,
    )
    def test_valid_prefix_survives_trailing_garbage(
        self, prefix, garbage, framing
    ):
        """Frames completed before the stream went bad are still
        delivered; the failure, if any, is typed."""
        texts = [protocol_module.encode(m) for m in prefix]
        stream = b"".join(
            protocol_module.encode_frame(t, framing) for t in texts
        )
        decoder = protocol_module.FrameDecoder(framing, max_frame_bytes=4096)
        delivered = decoder.feed(stream)
        assert delivered == texts
        try:
            delivered.extend(decoder.feed(garbage))
        except protocol_module.FramingError:
            pass


# ----------------------------------------------------------------------
# binary framing / payload codec invariants
# ----------------------------------------------------------------------
_BINARY_DTYPES = st.sampled_from(["float64", "float32", "int32", "uint8"])


@st.composite
def tile_responses(draw):
    """Payload-bearing responses with arbitrary dense attribute blocks."""
    key = draw(tile_keys(max_level=3))
    rows = draw(st.integers(1, 4))
    cols = draw(st.integers(1, 4))
    names = draw(
        st.lists(
            st.text("abcxyz_", min_size=1, max_size=6),
            min_size=1,
            max_size=3,
            unique=True,
        )
    )
    attributes = {}
    for index, name in enumerate(names):
        dtype = np.dtype(draw(_BINARY_DTYPES))
        cells = rows * cols
        if dtype.kind == "f":
            values = draw(
                st.lists(
                    st.floats(
                        allow_nan=False,
                        allow_infinity=False,
                        width=32,
                    ),
                    min_size=cells,
                    max_size=cells,
                )
            )
        else:
            values = draw(
                st.lists(st.integers(0, 200), min_size=cells, max_size=cells)
            )
        attributes[name] = np.asarray(values, dtype=dtype).reshape(rows, cols)
    tile = DataTile(key=key, attributes=attributes)
    return protocol_module.TileResponse(
        session_id=draw(st.text("abcdefgh-123", min_size=1, max_size=8)),
        tile=protocol_module.TileRef.from_key(key),
        latency_seconds=draw(st.floats(0.0, 10.0, allow_nan=False)),
        hit=draw(st.booleans()),
        payload=protocol_module.TilePayload.from_tile(tile, binary=True),
    )


class TestBinaryFramingProperties:
    """The binary wire holds the same fuzz bar as the JSON framings:
    garbage and truncation fail typed, and valid frames cut at arbitrary
    byte boundaries reassemble into equal messages."""

    @settings(max_examples=200, deadline=None)
    @given(
        data=st.binary(max_size=512),
        sizes=st.lists(st.integers(1, 64), max_size=8),
    )
    def test_garbage_never_crashes_untyped(self, data, sizes):
        decoder = protocol_module.FrameDecoder("binary", max_frame_bytes=256)
        try:
            frames = _feed_chunked(decoder, data, sizes)
        except protocol_module.FramingError:
            return  # a typed framing rejection is a pass
        # Survivors decode to a wire message or fail with the typed
        # malformed-message error — nothing escapes untyped.
        for frame in frames:
            try:
                protocol_module.decode_wire(frame)
            except protocol_module.InvalidRequestError:
                pass

    @settings(max_examples=60, deadline=None)
    @given(
        messages=st.lists(tile_responses(), min_size=1, max_size=3),
        sizes=st.lists(st.integers(1, 16), max_size=8),
    )
    def test_valid_binary_frames_reassemble_exactly(self, messages, sizes):
        stream = b"".join(
            protocol_module.encode_wire(m, "binary") for m in messages
        )
        decoder = protocol_module.FrameDecoder("binary")
        frames = _feed_chunked(decoder, stream, sizes)
        decoded = [protocol_module.decode_wire(f) for f in frames]
        assert decoded == messages
        assert decoder.buffered == 0

    @settings(max_examples=60, deadline=None)
    @given(message=tile_responses(), cut=st.integers(1, 2**31))
    def test_truncated_frame_stays_buffered(self, message, cut):
        frame = protocol_module.encode_wire(message, "binary")
        decoder = protocol_module.FrameDecoder("binary")
        # Any strict prefix yields nothing yet; the remainder completes
        # the frame exactly once.
        prefix = frame[: cut % len(frame)]
        assert decoder.feed(prefix) == []
        frames = decoder.feed(frame[len(prefix) :])
        assert [protocol_module.decode_wire(f) for f in frames] == [message]
        assert decoder.buffered == 0

    @settings(max_examples=60, deadline=None)
    @given(message=tile_responses(), flip=st.integers(0, 2**31))
    def test_corrupted_body_fails_typed(self, message, flip):
        frame = bytearray(protocol_module.encode_wire(message, "binary"))
        # Corrupt one body byte (skip the 5-byte kind+length header so
        # the decoder still cuts a frame to hand to the message codec).
        body_index = 5 + flip % (len(frame) - 5)
        frame[body_index] ^= 0xFF
        decoder = protocol_module.FrameDecoder("binary")
        try:
            frames = decoder.feed(bytes(frame))
        except protocol_module.FramingError:
            return  # corrupting the kind byte of a later frame is typed
        for out in frames:
            try:
                decoded = protocol_module.decode_wire(out)
            except protocol_module.InvalidRequestError:
                continue
            # A flip that survives decoding must have produced a
            # different message, never a silently-wrong equal one —
            # unless it only toggled JSON cosmetics (whitespace); those
            # decode equal by design.
            if decoded == message:
                rebuilt = protocol_module.encode_wire(decoded, "binary")
                assert rebuilt == protocol_module.encode_wire(
                    message, "binary"
                )

    def test_json_fallback_messages_pass_through_binary_framing(self):
        request = protocol_module.TileRequest(
            session_id="s1", tile=protocol_module.TileRef(0, 0, 0)
        )
        frame = protocol_module.encode_wire(request, "binary")
        decoder = protocol_module.FrameDecoder("binary")
        (out,) = decoder.feed(frame)
        assert isinstance(out, str)
        assert protocol_module.decode_wire(out) == request

    def test_unknown_kind_byte_rejected_immediately(self):
        decoder = protocol_module.FrameDecoder("binary")
        with pytest.raises(protocol_module.FramingError):
            decoder.feed(b"\x7f")


# ----------------------------------------------------------------------
# shared hotspot registry invariants
# ----------------------------------------------------------------------
# Exactness discipline: weights are small integers, decay is 0.5, and
# op lists are short, so every count is a dyadic rational well inside
# the 53-bit mantissa — float addition is exact and therefore
# commutative AND associative, letting the merge properties assert
# bit-identical snapshots instead of approximations.
registry_ops = st.lists(
    st.one_of(
        st.tuples(st.just("observe"), tile_keys(max_level=3), st.integers(1, 4)),
        st.tuples(st.just("advance"), st.just(None), st.integers(1, 1)),
    ),
    max_size=12,
)


def _apply_registry_ops(registry, ops):
    for kind, key, amount in ops:
        if kind == "observe":
            registry.observe(key, float(amount))
        else:
            registry.advance(amount)
    return registry


def _fresh_registry(ops, decay=0.5, shards=1):
    from repro.core.popularity import SharedHotspotRegistry

    return _apply_registry_ops(
        SharedHotspotRegistry(shards=shards, decay=decay), ops
    )


class TestSharedHotspotProperties:
    @settings(max_examples=100, deadline=None)
    @given(ops=registry_ops, decay=st.sampled_from([0.25, 0.5, 1.0]))
    def test_decayed_counts_never_negative(self, ops, decay):
        registry = _fresh_registry(ops, decay=decay)
        registry.advance(3)
        snap = registry.snapshot()
        assert all(weight >= 0.0 for _, weight in snap)
        assert snap == sorted(snap, key=lambda item: (-item[1], item[0]))

    @settings(max_examples=100, deadline=None)
    @given(ops=registry_ops, shards=st.integers(1, 6))
    def test_shard_count_never_changes_the_snapshot(self, ops, shards):
        assert (
            _fresh_registry(ops, shards=shards).snapshot()
            == _fresh_registry(ops, shards=1).snapshot()
        )

    @settings(max_examples=100, deadline=None)
    @given(ops_a=registry_ops, ops_b=registry_ops)
    def test_merge_is_commutative(self, ops_a, ops_b):
        ab = _fresh_registry(ops_a)
        ab.merge(_fresh_registry(ops_b))
        ba = _fresh_registry(ops_b)
        ba.merge(_fresh_registry(ops_a))
        assert ab.snapshot() == ba.snapshot()
        assert ab.tick == ba.tick

    @settings(max_examples=100, deadline=None)
    @given(ops_a=registry_ops, ops_b=registry_ops, ops_c=registry_ops)
    def test_merge_is_associative(self, ops_a, ops_b, ops_c):
        left = _fresh_registry(ops_a)
        left.merge(_fresh_registry(ops_b))
        left.merge(_fresh_registry(ops_c))
        bc = _fresh_registry(ops_b)
        bc.merge(_fresh_registry(ops_c))
        right = _fresh_registry(ops_a)
        right.merge(bc)
        assert left.snapshot() == right.snapshot()

    @settings(max_examples=100, deadline=None)
    @given(ops=registry_ops, n=st.integers(1, 5))
    def test_topn_is_a_prefix_of_the_full_snapshot(self, ops, n):
        registry = _fresh_registry(ops)
        assert registry.snapshot(n) == registry.snapshot()[:n]

    @settings(max_examples=100, deadline=None)
    @given(ops=registry_ops, n=st.integers(1, 5))
    def test_topn_stable_under_lighter_unrelated_observations(self, ops, n):
        """Observing a fresh key strictly lighter than the current N-th
        entry must leave the top-N prefix untouched."""
        registry = _fresh_registry(ops)
        full = registry.snapshot()
        if len(full) < n:
            return  # the newcomer would enter the top-N legitimately
        top_before = registry.snapshot(n)
        cutoff = full[n - 1][1]
        # Level 6 is outside the strategy's key space: guaranteed fresh.
        unrelated = TileKey(6, 0, 0)
        registry.observe(unrelated, cutoff / 2)
        assert registry.snapshot(n) == top_before
