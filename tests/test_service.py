"""The serving facade: session lifecycle, config validation, and
front-end equivalence (legacy server / facade / wire transport)."""

import threading

import pytest

from repro.cache.manager import CacheManager
from repro.cache.tile_cache import TileCache
from repro.core.allocation import SingleModelStrategy
from repro.core.engine import PredictionEngine
from repro.middleware.client import BrowsingSession
from repro.middleware.config import CacheConfig, PrefetchPolicy, ServiceConfig
from repro.middleware.protocol import (
    DuplicateSessionError,
    SessionClosedError,
    SessionNotFoundError,
)
from repro.middleware.server import ForeCacheServer
from repro.middleware.service import ForeCacheService
from repro.middleware.transport import InProcessTransport
from repro.recommenders.momentum import MomentumRecommender
from repro.tiles.key import TileKey
from repro.tiles.moves import Move


def make_engine(grid) -> PredictionEngine:
    model = MomentumRecommender()
    return PredictionEngine(
        grid, {model.name: model}, SingleModelStrategy(model.name)
    )


@pytest.fixture
def service(small_dataset):
    with ForeCacheService(
        small_dataset.pyramid,
        ServiceConfig(prefetch=PrefetchPolicy(k=5)),
        engine_factory=lambda: make_engine(small_dataset.pyramid.grid),
    ) as service:
        yield service


class TestConfig:
    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            PrefetchPolicy(k=0)

    def test_rejects_bad_mode(self):
        with pytest.raises(ValueError):
            PrefetchPolicy(mode="eager")

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            PrefetchPolicy(workers=0)

    def test_legacy_servers_validate_workers_too(self, small_dataset):
        engine = make_engine(small_dataset.pyramid.grid)
        with pytest.raises(ValueError):
            ForeCacheServer(
                small_dataset.pyramid, engine, prefetch_workers=0
            )

    def test_rejects_undersized_shared_prefetch_region(self, small_dataset):
        # Validated when the service materializes the cache (the config
        # alone cannot know whether an injected manager will be used).
        config = ServiceConfig(
            prefetch=PrefetchPolicy(k=9, share_budget=True),
            cache=CacheConfig(prefetch_capacity=4),
        )
        with pytest.raises(ValueError):
            ForeCacheService(small_dataset.pyramid, config)

    def test_share_budget_config_ok_with_roomy_injected_cache(
        self, small_dataset
    ):
        """A small config.cache must not veto a large injected manager."""
        manager = CacheManager(
            small_dataset.pyramid, TileCache(prefetch_capacity=32)
        )
        config = ServiceConfig(
            prefetch=PrefetchPolicy(k=16, share_budget=True)
        )
        with ForeCacheService(
            small_dataset.pyramid, config, cache_manager=manager
        ) as service:
            assert service.cache_manager is manager

    def test_rejects_undersized_injected_cache(self, small_dataset):
        manager = CacheManager(
            small_dataset.pyramid, TileCache(prefetch_capacity=2)
        )
        with pytest.raises(ValueError):
            ForeCacheService(
                small_dataset.pyramid,
                ServiceConfig(
                    prefetch=PrefetchPolicy(k=8, share_budget=True)
                ),
                cache_manager=manager,
            )

    def test_configs_are_frozen(self):
        policy = PrefetchPolicy()
        with pytest.raises(AttributeError):
            policy.k = 3


class TestSessionLifecycle:
    def test_open_request_close(self, service):
        session = service.open_session()
        response = session.request(None, TileKey(0, 0, 0))
        assert response.tile.key == TileKey(0, 0, 0)
        assert session.recorder.count == 1
        session.close()
        assert session.closed
        assert service.session_count == 0

    def test_auto_session_ids_are_unique(self, service):
        ids = {service.open_session().session_id for _ in range(10)}
        assert len(ids) == 10

    def test_auto_id_skips_names_callers_claimed(self, service):
        service.open_session(session_id="session-1")
        auto = service.open_session()
        assert auto.session_id != "session-1"

    def test_duplicate_session_id_rejected(self, service):
        service.open_session(session_id="alice")
        with pytest.raises(DuplicateSessionError):
            service.open_session(session_id="alice")
        # The typed error still honors the legacy ValueError contract.
        with pytest.raises(ValueError):
            service.open_session(session_id="alice")

    def test_request_after_close_rejected(self, service):
        session = service.open_session()
        session.request(None, TileKey(0, 0, 0))
        session.close()
        with pytest.raises(SessionClosedError):
            session.request(Move.ZOOM_IN_NW, TileKey(1, 0, 0))

    def test_close_is_idempotent(self, service):
        session = service.open_session()
        session.close()
        session.close()

    def test_unknown_session_rejected(self, service):
        with pytest.raises(SessionNotFoundError):
            service.request("ghost", None, TileKey(0, 0, 0))
        with pytest.raises(SessionNotFoundError):
            service.close_session("ghost")

    def test_open_after_service_close_rejected(self, small_dataset):
        service = ForeCacheService(small_dataset.pyramid)
        service.close()
        with pytest.raises(SessionClosedError):
            service.open_session(make_engine(small_dataset.pyramid.grid))

    def test_service_close_closes_sessions(self, small_dataset):
        service = ForeCacheService(
            small_dataset.pyramid,
            engine_factory=lambda: make_engine(small_dataset.pyramid.grid),
        )
        session = service.open_session()
        service.close()
        with pytest.raises(SessionClosedError):
            session.request(None, TileKey(0, 0, 0))

    def test_session_handle_context_manager(self, service):
        with service.open_session() as session:
            session.request(None, TileKey(0, 0, 0))
        assert session.closed

    def test_open_session_requires_engine_or_factory(self, small_dataset):
        with ForeCacheService(small_dataset.pyramid) as service:
            with pytest.raises(ValueError):
                service.open_session()

    def test_concurrent_open_session_from_many_threads(self, service):
        """Auto ids stay unique and named collisions lose cleanly."""
        opened, errors = [], []
        barrier = threading.Barrier(8)

        def auto_open():
            barrier.wait()
            opened.append(service.open_session())

        def named_open():
            barrier.wait()
            try:
                opened.append(service.open_session(session_id="contested"))
            except DuplicateSessionError:
                errors.append(1)

        threads = [threading.Thread(target=auto_open) for _ in range(4)] + [
            threading.Thread(target=named_open) for _ in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        ids = [session.session_id for session in opened]
        assert len(ids) == len(set(ids))
        assert len(errors) == 3  # exactly one thread won the name
        assert service.session_count == 5

    def test_session_info_snapshot(self, service):
        session = service.open_session(session_id="s1")
        session.request(None, TileKey(2, 1, 1))
        info = session.info()
        assert info.session_id == "s1"
        assert info.open
        assert info.requests == 1
        assert info.hits == 0
        assert info.prefetch_mode == "sync"
        session.close()

    def test_shared_cache_across_sessions(self, service):
        """A tile one session pulled in serves the other from cache."""
        first = service.open_session(session_id=1)
        second = service.open_session(session_id=2)
        first.request(None, TileKey(2, 1, 1))
        response = second.request(None, TileKey(2, 1, 1))
        assert response.hit


class TestEquivalence:
    """The acceptance bar: identical tile/hit/latency sequences through
    the legacy server, the facade, and the wire transport."""

    @staticmethod
    def replay_signature(responses):
        return [
            (r.tile.key, r.hit, r.latency_seconds, r.phase) for r in responses
        ]

    def test_legacy_facade_and_wire_replays_match(
        self, small_dataset, small_study
    ):
        trace = max(small_study.traces, key=len)
        grid = small_dataset.pyramid.grid

        legacy = ForeCacheServer(
            small_dataset.pyramid, make_engine(grid), prefetch_k=5
        )
        legacy_responses = BrowsingSession(legacy).replay(trace)

        config = ServiceConfig(prefetch=PrefetchPolicy(k=5))
        with ForeCacheService(small_dataset.pyramid, config) as service:
            handle = service.open_session(make_engine(grid))
            facade_responses = BrowsingSession(handle).replay(trace)

        with ForeCacheService(small_dataset.pyramid, config) as service:
            transport = InProcessTransport(service)
            conn = transport.connect(make_engine(grid))
            wire_responses = BrowsingSession(conn).replay(trace)

        legacy_sig = self.replay_signature(legacy_responses)
        assert self.replay_signature(facade_responses) == legacy_sig
        assert self.replay_signature(wire_responses) == legacy_sig
        # The wire round trip rebuilt every payload losslessly.
        for wire, ref in zip(wire_responses, legacy_responses):
            assert wire.tile == ref.tile

    def test_facade_recorder_matches_legacy(self, small_dataset, small_study):
        trace = small_study.traces[0]
        grid = small_dataset.pyramid.grid
        legacy = ForeCacheServer(
            small_dataset.pyramid, make_engine(grid), prefetch_k=5
        )
        BrowsingSession(legacy).replay(trace)
        with ForeCacheService(
            small_dataset.pyramid, ServiceConfig(prefetch=PrefetchPolicy(k=5))
        ) as service:
            handle = service.open_session(make_engine(grid))
            BrowsingSession(handle).replay(trace)
            assert handle.recorder.latencies == legacy.recorder.latencies
            assert handle.recorder.hits == legacy.recorder.hits


class TestWireTransport:
    def test_wire_errors_are_typed(self, service):
        transport = InProcessTransport(service)
        conn = transport.connect()
        conn.close()
        # A closed session is forgotten by id, so the wire reports it
        # unknown — still a typed protocol error the client can handle.
        with pytest.raises(SessionNotFoundError):
            conn.handle_request(None, TileKey(0, 0, 0))

    def test_unknown_wire_session(self, service):
        transport = InProcessTransport(service)
        conn = transport.connect()
        conn.session_id = "ghost"
        with pytest.raises(SessionNotFoundError):
            conn.handle_request(None, TileKey(0, 0, 0))

    def test_wire_close_is_idempotent(self, service):
        transport = InProcessTransport(service)
        conn = transport.connect()
        conn.close()
        conn.close()

    def test_non_string_session_id_is_stringified_on_open(self, service):
        """The facade and the wire must agree on the session key."""
        transport = InProcessTransport(service)
        conn = transport.connect(session_id=7)
        assert conn.handle_request(None, TileKey(0, 0, 0)).tile.key == TileKey(
            0, 0, 0
        )
        conn.close()
        assert service.session_count == 0

    def test_metadata_only_transport_refuses_materialization(self, service):
        transport = InProcessTransport(service, include_payload=False)
        conn = transport.connect()
        with pytest.raises(Exception, match="payload"):
            conn.handle_request(None, TileKey(0, 0, 0))


class TestBackgroundService:
    def test_background_sessions_prefetch_and_drain(self, small_dataset):
        config = ServiceConfig(
            prefetch=PrefetchPolicy(k=5, mode="background", workers=2)
        )
        with ForeCacheService(small_dataset.pyramid, config) as service:
            session = service.open_session(
                make_engine(small_dataset.pyramid.grid)
            )
            first = session.request(None, TileKey(2, 1, 1))
            assert service.drain(timeout=10)
            target = first.prefetched[0]
            move = TileKey(2, 1, 1).move_to(target)
            assert session.request(move, target).hit

    def test_close_shuts_down_owned_scheduler(self, small_dataset):
        config = ServiceConfig(prefetch=PrefetchPolicy(mode="background"))
        service = ForeCacheService(small_dataset.pyramid, config)
        assert service.owns_scheduler
        service.close()
        with pytest.raises(RuntimeError):
            service.scheduler.schedule([(TileKey(0, 0, 0), "m")])


class TestSchedulingKnobs:
    """admission and shards thread from config through the facade and
    both legacy adapters."""

    def test_rejects_bad_admission(self):
        with pytest.raises(ValueError):
            PrefetchPolicy(admission="lifo")

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            CacheConfig(shards=0)

    def test_service_builds_scheduler_with_admission(self, small_dataset):
        with ForeCacheService(
            small_dataset.pyramid,
            ServiceConfig(
                prefetch=PrefetchPolicy(mode="background", admission="fifo")
            ),
            engine_factory=lambda: make_engine(small_dataset.pyramid.grid),
        ) as svc:
            assert svc.scheduler.admission == "fifo"

    def test_priority_is_the_default_admission(self, small_dataset):
        with ForeCacheService(
            small_dataset.pyramid,
            ServiceConfig(prefetch=PrefetchPolicy(mode="background")),
            engine_factory=lambda: make_engine(small_dataset.pyramid.grid),
        ) as svc:
            assert svc.scheduler.admission == "priority"

    def test_cache_config_shards_reach_both_layers(self, small_dataset):
        manager = CacheConfig(shards=4).build_cache_manager(
            small_dataset.pyramid
        )
        assert manager.shards == 4
        assert manager.cache.shards == 4

    def test_legacy_server_threads_admission_and_shards(self, small_dataset):
        engine = make_engine(small_dataset.pyramid.grid)
        with ForeCacheServer(
            small_dataset.pyramid,
            engine,
            prefetch_mode="background",
            prefetch_admission="fifo",
            cache_shards=4,
        ) as server:
            assert server.scheduler.admission == "fifo"
            assert server.cache_manager.shards == 4
            assert server.cache_manager.cache.shards == 4

    def test_multiuser_server_threads_admission_and_shards(self, small_dataset):
        from repro.middleware.multiuser import MultiUserServer

        with MultiUserServer(
            small_dataset.pyramid,
            prefetch_k=8,
            prefetch_mode="background",
            prefetch_admission="fifo",
            cache_shards=4,
        ) as server:
            assert server.scheduler.admission == "fifo"
            assert server.cache_manager.shards == 4

    def test_background_requests_flow_through_priority_scheduler(
        self, small_dataset
    ):
        with ForeCacheService(
            small_dataset.pyramid,
            ServiceConfig(
                prefetch=PrefetchPolicy(k=4, mode="background"),
                cache=CacheConfig(shards=4),
            ),
            engine_factory=lambda: make_engine(small_dataset.pyramid.grid),
        ) as svc:
            session = svc.open_session()
            response = session.request(None, small_dataset.pyramid.grid.root)
            assert response.tile.key == small_dataset.pyramid.grid.root
            assert svc.drain(timeout=10)
            scheduler = svc.scheduler
            assert scheduler.jobs_submitted > 0
            assert scheduler.jobs_submitted == (
                scheduler.jobs_completed
                + scheduler.jobs_cancelled
                + scheduler.jobs_failed
            )
            assert scheduler.jobs_failed == 0


class TestProgressiveFidelity:
    """The overload ladder: config knobs, admission-time shedding in the
    prefetch scheduler, and degraded (ancestor-carved) serving."""

    def test_rejects_bad_fidelity_knobs(self):
        with pytest.raises(ValueError):
            PrefetchPolicy(fidelity="lossy")
        with pytest.raises(ValueError):
            PrefetchPolicy(fidelity_reduction=3)
        with pytest.raises(ValueError):
            PrefetchPolicy(fidelity_reduction=1)
        with pytest.raises(ValueError):
            PrefetchPolicy(shed_queue_depth=0)
        with pytest.raises(ValueError):
            PrefetchPolicy(shed_miss_streak=-1)
        with pytest.raises(ValueError):
            PrefetchPolicy(shed_keep_k=0)

    def test_fidelity_defaults_off(self):
        policy = PrefetchPolicy()
        assert policy.fidelity == "off"
        assert not policy.fidelity_enabled
        assert PrefetchPolicy(fidelity="progressive").fidelity_enabled

    def test_shedding_arms_only_with_progressive_fidelity(
        self, small_dataset
    ):
        background = PrefetchPolicy(mode="background", shed_queue_depth=4)
        with ForeCacheService(
            small_dataset.pyramid,
            ServiceConfig(prefetch=background),
            engine_factory=lambda: make_engine(small_dataset.pyramid.grid),
        ) as svc:
            assert svc.scheduler.shed_queue_depth is None
        armed = PrefetchPolicy(
            mode="background", fidelity="progressive", shed_queue_depth=4
        )
        with ForeCacheService(
            small_dataset.pyramid,
            ServiceConfig(prefetch=armed),
            engine_factory=lambda: make_engine(small_dataset.pyramid.grid),
        ) as svc:
            assert svc.scheduler.shed_queue_depth == 4
            assert svc.scheduler.shed_keep_k == 2

    def test_scheduler_sheds_low_rank_tail_under_backlog(self, small_dataset):
        from repro.middleware.scheduler import PrefetchScheduler

        manager = CacheManager(
            small_dataset.pyramid, backend_delay_seconds=0.1
        )
        with PrefetchScheduler(
            manager,
            max_workers=1,
            shed_queue_depth=2,
            shed_keep_k=2,
        ) as scheduler:
            first = [
                (TileKey(3, x, 0), "momentum") for x in range(4)
            ]
            scheduler.schedule(first, session_id="a")
            assert scheduler.queue_depth >= 2  # backlog past the threshold
            second = [
                (TileKey(3, x, 1), "momentum") for x in range(5)
            ]
            jobs = scheduler.schedule(second, session_id="b")
            # Only the keep_k best-ranked survive admission.
            assert len(jobs) == 2
            assert [job.rank for job in jobs] == [0, 1]
            assert scheduler.jobs_shed == 3
            assert scheduler.wait_idle(timeout=10)

    def test_no_shedding_when_disarmed(self, small_dataset):
        from repro.middleware.scheduler import PrefetchScheduler

        manager = CacheManager(
            small_dataset.pyramid, backend_delay_seconds=0.1
        )
        with PrefetchScheduler(manager, max_workers=1) as scheduler:
            scheduler.schedule(
                [(TileKey(3, x, 0), "momentum") for x in range(4)],
                session_id="a",
            )
            jobs = scheduler.schedule(
                [(TileKey(3, x, 1), "momentum") for x in range(5)],
                session_id="b",
            )
            assert len(jobs) == 5
            assert scheduler.jobs_shed == 0
            assert scheduler.wait_idle(timeout=10)

    def degraded_service(self, small_dataset, **knobs):
        policy = PrefetchPolicy(
            k=2,
            fidelity="progressive",
            shed_miss_streak=2,
            fidelity_reduction=4,
            **knobs,
        )
        return ForeCacheService(
            small_dataset.pyramid,
            ServiceConfig(
                prefetch=policy,
                cache=CacheConfig(recent_capacity=8, prefetch_capacity=4),
            ),
            engine_factory=lambda: make_engine(small_dataset.pyramid.grid),
        )

    def test_overload_serves_cached_ancestor_at_reduced_fidelity(
        self, small_dataset
    ):
        with self.degraded_service(small_dataset) as svc:
            session = svc.open_session()
            # Warm the level-1 ancestor, then trip the miss streak.
            assert session.request(None, TileKey(1, 0, 0)).fidelity == 1.0
            session.request(None, TileKey(4, 9, 9))
            session.request(None, TileKey(5, 20, 20))
            assert svc._overloaded()
            response = session.request(None, TileKey(3, 1, 1))
            # Depth-2 carve from the cached level-1 tile: full shape,
            # quarter resolution, served at hit latency.
            assert response.fidelity == 0.25
            assert response.hit
            assert response.tile.key == TileKey(3, 1, 1)
            assert response.tile.shape == (32, 32)
            assert svc.degraded_served == 1

    def test_no_cached_ancestor_pays_the_backend(self, small_dataset):
        with self.degraded_service(small_dataset) as svc:
            session = svc.open_session()
            session.request(None, TileKey(4, 9, 9))
            session.request(None, TileKey(5, 20, 20))
            assert svc._overloaded()
            # Nothing above this tile is resident: a real (full
            # fidelity) fetch happens, and is reported as the miss it is.
            response = session.request(None, TileKey(5, 3, 29))
            assert response.fidelity == 1.0
            assert not response.hit
            assert svc.degraded_served == 0

    def test_real_hit_clears_the_miss_streak(self, small_dataset):
        with self.degraded_service(small_dataset) as svc:
            session = svc.open_session()
            session.request(None, TileKey(4, 9, 9))
            session.request(None, TileKey(5, 20, 20))
            assert svc._overloaded()
            assert session.request(None, TileKey(4, 9, 9)).hit  # resident
            assert not svc._overloaded()
            assert svc._miss_streak == 0

    def test_off_mode_never_degrades(self, small_dataset):
        config = ServiceConfig(
            prefetch=PrefetchPolicy(k=2, shed_miss_streak=2),
            cache=CacheConfig(recent_capacity=8, prefetch_capacity=4),
        )
        with ForeCacheService(
            small_dataset.pyramid,
            config,
            engine_factory=lambda: make_engine(small_dataset.pyramid.grid),
        ) as svc:
            session = svc.open_session()
            session.request(None, TileKey(1, 0, 0))
            session.request(None, TileKey(4, 9, 9))
            session.request(None, TileKey(5, 20, 20))
            response = session.request(None, TileKey(3, 1, 1))
            assert response.fidelity == 1.0
            assert svc.degraded_served == 0
            assert svc._miss_streak == 0  # off mode never counts
