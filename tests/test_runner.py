"""Smoke tests for the experiment runner at miniature scale.

The benchmarks exercise these at full scale with shape assertions; here
we verify the machinery itself (every generator runs, produces sane
tables, and the CLI wiring holds) on a tiny world.
"""

import pytest

from repro.experiments.context import ExperimentContext
from repro.experiments.runner import (
    EXPERIMENTS,
    HYBRID_SIGNATURE,
    hybrid_factory,
    run_figure8,
    run_figure9,
    run_figure10a,
    run_history_ablation,
    run_phase_classifier,
    run_table1,
)


@pytest.fixture(scope="module")
def tiny_context():
    return ExperimentContext.build(size=256, num_users=3, days=1, num_words=8)


class TestRunnerFunctions:
    def test_table1(self, tiny_context):
        table, comparison = run_table1(tiny_context)
        assert len(table.rows) == 6
        assert len(comparison.rows) == 6
        for _, paper, measured in comparison.rows:
            assert 0.0 <= float(measured) <= 1.0

    def test_phase_classifier(self, tiny_context):
        comparison = run_phase_classifier(tiny_context)
        assert 0.0 <= float(comparison.rows[0][2]) <= 1.0

    def test_figure8(self, tiny_context):
        move_table, phase_table, user_table = run_figure8(tiny_context)
        assert len(move_table.rows) == 3
        # Move shares sum to ~1 per task (cells are rounded to 3 dp).
        for row in move_table.rows:
            assert sum(float(v) for v in row[1:4]) == pytest.approx(1.0, abs=2e-3)
        for row in phase_table.rows:
            assert sum(float(v) for v in row[1:4]) == pytest.approx(1.0, abs=2e-3)
        assert len(user_table.rows) == 9

    def test_figure9(self, tiny_context):
        table, comparison = run_figure9(tiny_context)
        assert table.rows[0][1] == "0"  # starts at the overview
        assert len(comparison.rows) == 2

    def test_figure10a(self, tiny_context):
        tables = run_figure10a(tiny_context, ks=(1, 9))
        overall = next(t for t in tables if t.title.endswith("overall"))
        series = {r[0]: [float(v) for v in r[1:]] for r in overall.rows}
        # k=9 covers the full move vocabulary for every model.
        for name, values in series.items():
            assert values[-1] == pytest.approx(1.0), name

    def test_history_ablation(self, tiny_context):
        table = run_history_ablation(tiny_context, orders=(2, 3), ks=(9,))
        series = {int(r[0]): float(r[1]) for r in table.rows}
        assert series[2] == pytest.approx(1.0)
        assert series[3] == pytest.approx(1.0)

    def test_hybrid_factory_uses_configured_signature(self, tiny_context):
        engine = hybrid_factory(tiny_context)(tiny_context.study.traces)
        assert f"sb:{HYBRID_SIGNATURE}" in engine.recommenders
        assert "markov3" in engine.recommenders
        assert engine.phase_predictor is not None

    def test_experiment_registry_complete(self):
        expected = {
            "table1", "phase", "fig8", "fig9", "fig10a", "fig10b", "fig10c",
            "fig11", "fig12", "fig13", "ablation-history",
            "ablation-allocation", "ablation-distance",
        }
        assert expected <= set(EXPERIMENTS)


class TestContext:
    def test_context_memoized(self, tiny_context):
        again = ExperimentContext.build(size=256, num_users=3, days=1, num_words=8)
        assert again is tiny_context

    def test_single_model_engines(self, tiny_context):
        study = tiny_context.study
        for engine in (
            tiny_context.momentum_engine(study.traces),
            tiny_context.hotspot_engine(study.traces),
            tiny_context.markov_engine(study.traces, 2),
            tiny_context.sb_engine("histogram"),
        ):
            engine.observe(None, tiny_context.grid.root)
            assert engine.predict(2).tiles
