"""Unit tests for the LRU, tile cache, and cache manager."""

import numpy as np
import pytest

from repro.cache.lru import LRUCache, ShardedLRUCache
from repro.cache.manager import CacheManager
from repro.cache.tile_cache import TileCache
from repro.tiles.key import TileKey
from repro.tiles.tile import DataTile


def tile(key: TileKey) -> DataTile:
    return DataTile(key=key, attributes={"v": np.zeros((2, 2))})


A, B, C, D = (TileKey(2, i, 0) for i in range(4))


class TestLRUCache:
    def test_put_get(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.hits == 1

    def test_miss_counted(self):
        cache = LRUCache(2)
        assert cache.get("missing") is None
        assert cache.misses == 1

    def test_eviction_order(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        evicted = cache.put("c", 3)
        assert evicted == "a"
        assert "a" not in cache

    def test_get_refreshes_recency(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")
        evicted = cache.put("c", 3)
        assert evicted == "b"

    def test_peek_does_not_refresh(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.peek("a")
        evicted = cache.put("c", 3)
        assert evicted == "a"

    def test_overwrite_no_eviction(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.put("a", 3) is None
        assert cache.get("a") == 3

    def test_keys_order(self):
        cache = LRUCache(3)
        for key in "abc":
            cache.put(key, key)
        cache.get("a")
        assert cache.keys() == ["b", "c", "a"]

    def test_hit_rate(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.get("a")
        cache.get("b")
        assert cache.hit_rate == pytest.approx(0.5)

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            LRUCache(0)


class TestTileCache:
    def test_lookup_both_regions(self):
        cache = TileCache(recent_capacity=2, prefetch_capacity=2)
        cache.record_request(tile(A))
        cache.store_prefetched(tile(B), "m")
        assert cache.lookup(A) is not None
        assert cache.lookup(B) is not None
        assert cache.lookup(C) is None

    def test_prefetch_capacity_enforced(self):
        cache = TileCache(prefetch_capacity=2)
        assert cache.store_prefetched(tile(A), "m")
        assert cache.store_prefetched(tile(B), "m")
        assert not cache.store_prefetched(tile(C), "m")
        assert C not in cache

    def test_begin_cycle_clears_prefetch_only(self):
        cache = TileCache(recent_capacity=2, prefetch_capacity=2)
        cache.record_request(tile(A))
        cache.store_prefetched(tile(B), "m")
        cache.begin_prefetch_cycle()
        assert cache.lookup(B) is None
        assert cache.lookup(A) is not None

    def test_attribution(self):
        cache = TileCache()
        cache.store_prefetched(tile(A), "markov3")
        cache.store_prefetched(tile(B), "sb:sift")
        assert cache.attribution(A) == "markov3"
        assert cache.model_usage() == {"markov3": 1, "sb:sift": 1}

    def test_nbytes_counts_both_regions(self):
        cache = TileCache()
        cache.record_request(tile(A))
        cache.store_prefetched(tile(B), "m")
        assert cache.nbytes() == 2 * tile(A).nbytes

    def test_clear(self):
        cache = TileCache()
        cache.record_request(tile(A))
        cache.store_prefetched(tile(B), "m")
        cache.clear()
        assert cache.lookup(A) is None
        assert cache.lookup(B) is None

    def test_rejects_zero_prefetch(self):
        with pytest.raises(ValueError):
            TileCache(prefetch_capacity=0)


class TestCacheManager:
    @pytest.fixture
    def manager(self, small_dataset):
        return CacheManager(small_dataset.pyramid, TileCache())

    def test_first_fetch_misses(self, manager):
        outcome = manager.fetch(TileKey(0, 0, 0))
        assert not outcome.hit
        assert outcome.backend_seconds > 0
        assert manager.hit_rate == 0.0

    def test_repeat_fetch_hits_recent(self, manager):
        key = TileKey(1, 0, 0)
        manager.fetch(key)
        outcome = manager.fetch(key)
        assert outcome.hit
        assert outcome.backend_seconds == 0.0
        assert manager.hit_rate == pytest.approx(0.5)

    def test_prefetched_tile_hits(self, manager):
        key = TileKey(1, 1, 0)
        queries = manager.prefetch([(key, "m")])
        assert queries == 1
        outcome = manager.fetch(key)
        assert outcome.hit

    def test_prefetch_skips_resident(self, manager):
        key = TileKey(1, 1, 1)
        manager.fetch(key)  # now in recent region
        queries = manager.prefetch([(key, "m")])
        assert queries == 0
        # Still claims a prefetch slot for bookkeeping.
        assert key in manager.cache.prefetched_keys

    def test_prefetch_respects_capacity(self, small_dataset):
        manager = CacheManager(
            small_dataset.pyramid, TileCache(prefetch_capacity=2)
        )
        keys = [(TileKey(2, i, 0), "m") for i in range(4)]
        manager.prefetch(keys)
        assert len(manager.cache.prefetched_keys) == 2

    def test_reset_stats(self, manager):
        manager.fetch(TileKey(0, 0, 0))
        manager.reset_stats()
        assert manager.requests == 0
        assert manager.hits == 0


class TestPromoteOnHit:
    """A requested tile lives in exactly one region: serving it from
    the prefetch region moves it to the recent LRU and frees the slot."""

    @pytest.fixture
    def manager(self, small_dataset):
        return CacheManager(small_dataset.pyramid, TileCache())

    def test_hit_from_prefetch_region_promotes(self, manager):
        key = TileKey(1, 1, 0)
        manager.prefetch([(key, "m")])
        assert key in manager.cache.prefetched_keys
        outcome = manager.fetch(key)
        assert outcome.hit
        assert key not in manager.cache.prefetched_keys
        assert key in manager.cache.recent_keys
        assert manager.cache.attribution(key) is None

    def test_promote_does_not_double_count_nbytes(self, manager):
        key = TileKey(1, 1, 0)
        manager.prefetch([(key, "m")])
        tile_bytes = manager.fetch(key).tile.nbytes
        assert manager.cache.nbytes() == tile_bytes

    def test_promote_frees_slot_for_next_admission(self, small_dataset):
        manager = CacheManager(
            small_dataset.pyramid, TileCache(prefetch_capacity=2)
        )
        a, b, c = (TileKey(2, i, 0) for i in range(3))
        manager.prefetch_one(a, "m")
        manager.prefetch_one(b, "m")
        manager.fetch(a)  # promoted out of the full prefetch region
        evicted = manager.prefetch_one(c, "m")
        assert evicted.key == c
        # The freed slot absorbed c; b was not evicted to make room.
        assert manager.cache.lookup(b) is not None
        assert set(manager.cache.prefetched_keys) == {b, c}

    def test_plain_hit_from_recent_unaffected(self, manager):
        key = TileKey(1, 0, 1)
        manager.fetch(key)
        outcome = manager.fetch(key)
        assert outcome.hit
        assert key in manager.cache.recent_keys


class TestRecordRequestOnce:
    """Every fetch path records the tile into the recent LRU exactly
    once: hit, miss owner (via publish), and coalesced waiter."""

    def test_hit_and_owner_record_once(self, small_dataset):
        manager = CacheManager(small_dataset.pyramid, TileCache())
        calls: list[TileKey] = []
        original = manager.cache.record_request

        def counting(t):
            calls.append(t.key)
            original(t)

        manager.cache.record_request = counting
        key = TileKey(1, 0, 0)
        manager.fetch(key)  # miss: owner records via publish only
        assert calls == [key]
        manager.fetch(key)  # hit: records once more
        assert calls == [key, key]

    def test_coalesced_waiter_records_once(self, small_dataset):
        import threading

        manager = CacheManager(small_dataset.pyramid, TileCache())
        calls: list[TileKey] = []
        record_original = manager.cache.record_request

        def counting(t):
            calls.append(t.key)
            record_original(t)

        manager.cache.record_request = counting
        key = TileKey(1, 1, 1)
        started = threading.Event()
        release = threading.Event()
        query_original = manager._query_backend

        def gated(query_key):
            started.set()
            assert release.wait(10)
            return query_original(query_key)

        manager._query_backend = gated
        owner = threading.Thread(target=manager.fetch, args=(key,))
        owner.start()
        assert started.wait(10)
        waiter = threading.Thread(target=manager.fetch, args=(key,))
        waiter.start()
        release.set()
        owner.join(timeout=10)
        waiter.join(timeout=10)
        assert not owner.is_alive() and not waiter.is_alive()
        # Two requests, two recordings: owner via publish, waiter itself.
        assert calls == [key, key]


class TestShardedTileCache:
    def test_shards_capped_at_capacity(self):
        cache = TileCache(prefetch_capacity=2, shards=8)
        assert cache.shards == 2

    def test_capacity_split_sums_to_total(self):
        cache = TileCache(prefetch_capacity=9, shards=4)
        assert sum(cache._capacities) == 9
        assert max(cache._capacities) - min(cache._capacities) <= 1

    def test_lookup_and_attribution_across_shards(self):
        cache = TileCache(prefetch_capacity=8, shards=4)
        # Pick keys that respect each shard's capacity slice (2 slots),
        # so every store is accepted.
        per_shard: dict[int, int] = {}
        keys = []
        for candidate in (TileKey(4, x, y) for x in range(16) for y in range(16)):
            shard = cache._shard(candidate)
            if per_shard.get(shard, 0) < 2:
                per_shard[shard] = per_shard.get(shard, 0) + 1
                keys.append(candidate)
            if len(keys) == 6:
                break
        for i, key in enumerate(keys):
            assert cache.store_prefetched(tile(key), f"m{i % 2}")
        for i, key in enumerate(keys):
            assert cache.lookup(key) is not None
            assert cache.attribution(key) == f"m{i % 2}"
        usage = cache.model_usage()
        assert usage == {"m0": 3, "m1": 3}
        assert sorted(cache.prefetched_keys) == sorted(keys)

    def test_admit_evicts_within_the_keys_shard(self):
        cache = TileCache(prefetch_capacity=4, shards=4)
        # Find three keys that land in the same (single-slot) shard.
        target = cache._shard(TileKey(6, 0, 0))
        same_shard = [
            key
            for key in (TileKey(6, x, y) for x in range(12) for y in range(12))
            if cache._shard(key) == target
        ][:3]
        first, second, third = same_shard
        assert cache.admit_prefetched(tile(first), "m") is None
        assert cache.admit_prefetched(tile(second), "m") == first
        assert cache.admit_prefetched(tile(third), "m") == second
        assert cache.lookup(third) is not None

    def test_clear_spans_all_shards(self):
        cache = TileCache(recent_capacity=4, prefetch_capacity=8, shards=4)
        for x in range(6):
            cache.store_prefetched(tile(TileKey(3, x, 0)), "m")
        cache.record_request(tile(TileKey(3, 0, 1)))
        cache.clear()
        assert cache.prefetched_keys == []
        assert cache.recent_keys == []
        assert cache.nbytes() == 0

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            TileCache(shards=0)

    def test_manager_rejects_zero_shards(self, small_dataset):
        with pytest.raises(ValueError):
            CacheManager(small_dataset.pyramid, TileCache(), shards=0)


class TestRiderAdmission:
    def test_prefetch_rider_does_not_readmit_fetched_tile(self, small_dataset):
        """A prefetch job coalescing on a user fetch's in-flight load
        must not admit the tile into the prefetch region: the fetch
        owner already recorded it into the recent LRU, and one tile
        lives in exactly one region."""
        import threading

        manager = CacheManager(small_dataset.pyramid, TileCache())
        key = TileKey(1, 1, 0)
        started = threading.Event()
        release = threading.Event()
        original = manager._query_backend

        def gated(query_key):
            started.set()
            assert release.wait(10)
            return original(query_key)

        manager._query_backend = gated
        owner = threading.Thread(target=manager.fetch, args=(key,))
        owner.start()
        assert started.wait(10)  # fetch owns the in-flight load
        rider = threading.Thread(
            target=manager.prefetch_one, args=(key, "m")
        )
        rider.start()
        release.set()
        owner.join(timeout=10)
        rider.join(timeout=10)
        assert not owner.is_alive() and not rider.is_alive()
        assert key in manager.cache.recent_keys
        assert key not in manager.cache.prefetched_keys
        assert manager.cache.nbytes() == manager.fetch(key).tile.nbytes


class TestShardedSyncCycle:
    def test_full_shard_does_not_abort_cycle(self, small_dataset):
        """A sync prefetch cycle over a sharded region skips a tile
        whose shard is full but keeps filling the other shards; only a
        truly full region stops the cycle."""
        cache = TileCache(recent_capacity=4, prefetch_capacity=4, shards=4)
        # Two keys in one single-slot shard, then keys in other shards.
        target = cache._shard(TileKey(5, 0, 0))
        same_shard, others = [], []
        for candidate in (TileKey(5, x, y) for x in range(12) for y in range(12)):
            if cache._shard(candidate) == target and len(same_shard) < 2:
                same_shard.append(candidate)
            elif cache._shard(candidate) != target and len(others) < 3:
                # One key per distinct other shard.
                if all(
                    cache._shard(candidate) != cache._shard(k) for k in others
                ):
                    others.append(candidate)
        manager = CacheManager(small_dataset.pyramid, cache)
        predictions = [(same_shard[0], "m"), (same_shard[1], "m")] + [
            (key, "m") for key in others
        ]
        manager.prefetch(predictions)
        stored = set(cache.prefetched_keys)
        # The colliding key was skipped; everything after it still landed.
        assert same_shard[0] in stored
        assert same_shard[1] not in stored
        assert stored.issuperset(others)
        assert len(stored) == 4


class TestShardedLRUCache:
    def test_one_shard_matches_plain_lru_exactly(self):
        """shards=1 must be operation-for-operation identical to LRUCache
        (the sync figure benchmarks replay through this configuration)."""
        import random

        plain = LRUCache(4)
        sharded = ShardedLRUCache(4, shards=1)
        rng = random.Random(7)
        for step in range(500):
            key = rng.randrange(12)
            op = rng.randrange(3)
            if op == 0:
                assert plain.put(key, step) == sharded.put(key, step)
            elif op == 1:
                assert plain.get(key) == sharded.get(key)
            else:
                assert plain.peek(key) == sharded.peek(key)
            assert plain.keys() == sharded.keys()
            assert plain.hits == sharded.hits
            assert plain.misses == sharded.misses

    def test_capacity_split_across_segments(self):
        cache = ShardedLRUCache(10, shards=4)
        assert cache.shards == 4
        assert [seg.capacity for seg in cache._segments] == [3, 3, 2, 2]
        assert cache.capacity == 10

    def test_shards_clamped_to_capacity(self):
        cache = ShardedLRUCache(2, shards=8)
        assert cache.shards == 2

    def test_total_occupancy_bounded(self):
        cache = ShardedLRUCache(6, shards=3)
        for n in range(50):
            cache.put(n, n)
        assert len(cache) <= 6

    def test_counters_aggregate_segments(self):
        cache = ShardedLRUCache(8, shards=4)
        for n in range(8):
            cache.put(n, n)
        present = sum(1 for n in range(8) if cache.get(n) is not None)
        assert cache.hits == present
        cache.get(99)
        assert cache.misses >= 1
        assert 0.0 < cache.hit_rate < 1.0

    def test_eviction_is_per_segment(self):
        """An insert can only evict from its own key's segment."""
        cache = ShardedLRUCache(4, shards=4)
        keys = list(range(16))
        for key in keys:
            evicted = cache.put(key, key)
            if evicted is not None:
                same_segment = (
                    cache._segments[hash(evicted) % cache.shards]
                    is cache._segments[hash(key) % cache.shards]
                )
                assert same_segment

    def test_clear_and_validation(self):
        cache = ShardedLRUCache(4, shards=2)
        cache.put("a", 1)
        cache.clear()
        assert len(cache) == 0
        assert "a" not in cache
        with pytest.raises(ValueError):
            ShardedLRUCache(0)
        with pytest.raises(ValueError):
            ShardedLRUCache(4, shards=0)
