"""Unit tests for the LRU, tile cache, and cache manager."""

import numpy as np
import pytest

from repro.cache.lru import LRUCache
from repro.cache.manager import CacheManager
from repro.cache.tile_cache import TileCache
from repro.tiles.key import TileKey
from repro.tiles.tile import DataTile


def tile(key: TileKey) -> DataTile:
    return DataTile(key=key, attributes={"v": np.zeros((2, 2))})


A, B, C, D = (TileKey(2, i, 0) for i in range(4))


class TestLRUCache:
    def test_put_get(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.hits == 1

    def test_miss_counted(self):
        cache = LRUCache(2)
        assert cache.get("missing") is None
        assert cache.misses == 1

    def test_eviction_order(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        evicted = cache.put("c", 3)
        assert evicted == "a"
        assert "a" not in cache

    def test_get_refreshes_recency(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")
        evicted = cache.put("c", 3)
        assert evicted == "b"

    def test_peek_does_not_refresh(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.peek("a")
        evicted = cache.put("c", 3)
        assert evicted == "a"

    def test_overwrite_no_eviction(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.put("a", 3) is None
        assert cache.get("a") == 3

    def test_keys_order(self):
        cache = LRUCache(3)
        for key in "abc":
            cache.put(key, key)
        cache.get("a")
        assert cache.keys() == ["b", "c", "a"]

    def test_hit_rate(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.get("a")
        cache.get("b")
        assert cache.hit_rate == pytest.approx(0.5)

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            LRUCache(0)


class TestTileCache:
    def test_lookup_both_regions(self):
        cache = TileCache(recent_capacity=2, prefetch_capacity=2)
        cache.record_request(tile(A))
        cache.store_prefetched(tile(B), "m")
        assert cache.lookup(A) is not None
        assert cache.lookup(B) is not None
        assert cache.lookup(C) is None

    def test_prefetch_capacity_enforced(self):
        cache = TileCache(prefetch_capacity=2)
        assert cache.store_prefetched(tile(A), "m")
        assert cache.store_prefetched(tile(B), "m")
        assert not cache.store_prefetched(tile(C), "m")
        assert C not in cache

    def test_begin_cycle_clears_prefetch_only(self):
        cache = TileCache(recent_capacity=2, prefetch_capacity=2)
        cache.record_request(tile(A))
        cache.store_prefetched(tile(B), "m")
        cache.begin_prefetch_cycle()
        assert cache.lookup(B) is None
        assert cache.lookup(A) is not None

    def test_attribution(self):
        cache = TileCache()
        cache.store_prefetched(tile(A), "markov3")
        cache.store_prefetched(tile(B), "sb:sift")
        assert cache.attribution(A) == "markov3"
        assert cache.model_usage() == {"markov3": 1, "sb:sift": 1}

    def test_nbytes_counts_both_regions(self):
        cache = TileCache()
        cache.record_request(tile(A))
        cache.store_prefetched(tile(B), "m")
        assert cache.nbytes() == 2 * tile(A).nbytes

    def test_clear(self):
        cache = TileCache()
        cache.record_request(tile(A))
        cache.store_prefetched(tile(B), "m")
        cache.clear()
        assert cache.lookup(A) is None
        assert cache.lookup(B) is None

    def test_rejects_zero_prefetch(self):
        with pytest.raises(ValueError):
            TileCache(prefetch_capacity=0)


class TestCacheManager:
    @pytest.fixture
    def manager(self, small_dataset):
        return CacheManager(small_dataset.pyramid, TileCache())

    def test_first_fetch_misses(self, manager):
        outcome = manager.fetch(TileKey(0, 0, 0))
        assert not outcome.hit
        assert outcome.backend_seconds > 0
        assert manager.hit_rate == 0.0

    def test_repeat_fetch_hits_recent(self, manager):
        key = TileKey(1, 0, 0)
        manager.fetch(key)
        outcome = manager.fetch(key)
        assert outcome.hit
        assert outcome.backend_seconds == 0.0
        assert manager.hit_rate == pytest.approx(0.5)

    def test_prefetched_tile_hits(self, manager):
        key = TileKey(1, 1, 0)
        queries = manager.prefetch([(key, "m")])
        assert queries == 1
        outcome = manager.fetch(key)
        assert outcome.hit

    def test_prefetch_skips_resident(self, manager):
        key = TileKey(1, 1, 1)
        manager.fetch(key)  # now in recent region
        queries = manager.prefetch([(key, "m")])
        assert queries == 0
        # Still claims a prefetch slot for bookkeeping.
        assert key in manager.cache.prefetched_keys

    def test_prefetch_respects_capacity(self, small_dataset):
        manager = CacheManager(
            small_dataset.pyramid, TileCache(prefetch_capacity=2)
        )
        keys = [(TileKey(2, i, 0), "m") for i in range(4)]
        manager.prefetch(keys)
        assert len(manager.cache.prefetched_keys) == 2

    def test_reset_stats(self, manager):
        manager.fetch(TileKey(0, 0, 0))
        manager.reset_stats()
        assert manager.requests == 0
        assert manager.hits == 0
