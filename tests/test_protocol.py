"""Wire-protocol round trips: every message survives JSON losslessly."""

import json

import numpy as np
import pytest

from repro.middleware import protocol
from repro.middleware.latency import LatencyRecorder
from repro.middleware.protocol import (
    AttributeBlock,
    DuplicateSessionError,
    ErrorInfo,
    InvalidRequestError,
    ProtocolError,
    SessionClosedError,
    SessionInfo,
    SessionNotFoundError,
    TilePayload,
    TileRef,
    TileRequest,
    TileResponse,
)
from repro.tiles.key import TileKey
from repro.tiles.moves import Move
from repro.tiles.tile import DataTile


def roundtrip(message):
    """encode -> JSON string -> decode."""
    encoded = protocol.encode(message)
    json.loads(encoded)  # must be valid JSON, not just a repr
    return protocol.decode(encoded)


class TestTileRef:
    def test_key_round_trip(self):
        key = TileKey(3, 5, 2)
        assert TileRef.from_key(key).to_key() == key

    def test_list_round_trip(self):
        ref = TileRef(2, 1, 3)
        assert TileRef.from_list(ref.to_list()) == ref


class TestTilePayload:
    def test_payload_round_trip_is_lossless(self):
        tile = DataTile(
            key=TileKey(2, 1, 0),
            attributes={
                "ndsi_avg": np.linspace(-1.0, 1.0, 16).reshape(4, 4),
                "count": np.arange(16, dtype="int32").reshape(4, 4),
            },
        )
        payload = TilePayload.from_tile(tile)
        rebuilt = TilePayload.from_dict(
            json.loads(json.dumps(payload.to_dict()))
        )
        assert rebuilt == payload
        restored = rebuilt.to_tile()
        assert restored.key == tile.key
        for name, array in tile.attributes.items():
            assert restored.attributes[name].dtype == array.dtype
            np.testing.assert_array_equal(restored.attributes[name], array)

    def test_float32_exact(self):
        array = np.asarray([0.1, 2.0 / 3.0], dtype="float32")
        block = AttributeBlock.from_array("v", array.reshape(1, 2))
        rebuilt = AttributeBlock.from_dict(
            json.loads(json.dumps(block.to_dict()))
        ).to_array()
        assert rebuilt.dtype == np.float32
        np.testing.assert_array_equal(rebuilt, array.reshape(1, 2))


class TestMessages:
    def test_tile_request_round_trip(self):
        request = TileRequest(
            session_id="s1",
            tile=TileRef(2, 1, 1),
            move=Move.PAN_RIGHT.value,
        )
        assert roundtrip(request) == request
        assert roundtrip(request).to_move() is Move.PAN_RIGHT

    def test_start_request_has_no_move(self):
        request = TileRequest(session_id="s1", tile=TileRef(0, 0, 0))
        assert roundtrip(request) == request
        assert roundtrip(request).to_move() is None

    def test_unknown_move_rejected(self):
        request = TileRequest(
            session_id="s1", tile=TileRef(0, 0, 0), move="teleport"
        )
        with pytest.raises(InvalidRequestError):
            request.to_move()

    def test_tile_response_round_trip(self):
        tile = DataTile(
            key=TileKey(1, 0, 1),
            attributes={"v": np.ones((2, 2))},
        )
        response = TileResponse(
            session_id="s1",
            tile=TileRef(1, 0, 1),
            latency_seconds=0.0195,
            hit=True,
            phase="foraging",
            prefetched=(TileRef(1, 1, 1), TileRef(0, 0, 0)),
            payload=TilePayload.from_tile(tile),
        )
        assert roundtrip(response) == response

    def test_session_info_round_trip(self):
        info = SessionInfo(
            session_id="s9",
            open=True,
            prefetch_mode="background",
            requests=12,
            hits=9,
            hit_rate=0.75,
            average_latency_seconds=0.05,
        )
        assert roundtrip(info) == info

    def test_error_round_trip_and_reraise(self):
        for exc_type in (
            SessionNotFoundError,
            DuplicateSessionError,
            SessionClosedError,
            InvalidRequestError,
        ):
            original = exc_type("boom", session_id="s3")
            info = ErrorInfo.from_exception(original)
            back = roundtrip(info)
            assert back == info
            raised = back.to_exception()
            assert type(raised) is exc_type
            assert raised.message == "boom"
            assert raised.session_id == "s3"

    def test_foreign_exception_maps_to_base_error(self):
        info = ErrorInfo.from_exception(ZeroDivisionError("np"))
        assert info.code == ProtocolError.code
        assert isinstance(info.to_exception(), ProtocolError)


class TestEnvelope:
    def test_decode_rejects_garbage(self):
        with pytest.raises(InvalidRequestError):
            protocol.decode("{not json")

    def test_decode_rejects_unknown_type(self):
        with pytest.raises(InvalidRequestError):
            protocol.decode(json.dumps({"type": "warp_drive"}))

    def test_decode_rejects_non_object(self):
        with pytest.raises(InvalidRequestError):
            protocol.decode(json.dumps([1, 2, 3]))

    def test_decode_rejects_missing_fields(self):
        with pytest.raises(InvalidRequestError):
            protocol.decode(json.dumps({"type": "tile_request"}))

    def test_encode_rejects_non_messages(self):
        with pytest.raises(TypeError):
            protocol.encode({"session_id": "s1"})


class TestLatencyRecorderExport:
    def test_dict_round_trip(self):
        recorder = LatencyRecorder()
        recorder.record(0.0195, True)
        recorder.record(0.984, False)
        recorder.record(0.0195, True)
        rebuilt = LatencyRecorder.from_dict(recorder.to_dict())
        assert rebuilt == recorder

    def test_json_round_trip(self):
        recorder = LatencyRecorder()
        recorder.record(0.1, False)
        rebuilt = LatencyRecorder.from_json(recorder.to_json())
        assert rebuilt.latencies == recorder.latencies
        assert rebuilt.hits == recorder.hits

    def test_summary_fields(self):
        recorder = LatencyRecorder()
        for latency in (0.1, 0.2, 0.3, 0.4):
            recorder.record(latency, latency < 0.25)
        data = recorder.to_dict(include_latencies=False)
        assert "latencies" not in data
        assert data["count"] == 4
        assert data["hits"] == 2
        assert data["hit_rate"] == pytest.approx(0.5)
        assert data["average_seconds"] == pytest.approx(0.25)
        assert data["p95_seconds"] == pytest.approx(0.4)
        json.dumps(data)  # JSON-ready

    def test_summary_only_cannot_round_trip(self):
        recorder = LatencyRecorder()
        recorder.record(0.1, True)
        with pytest.raises(ValueError):
            LatencyRecorder.from_dict(
                recorder.to_dict(include_latencies=False)
            )
