"""Wire-protocol round trips: every message survives JSON losslessly."""

import json

import numpy as np
import pytest

from repro.middleware import protocol
from repro.middleware.latency import LatencyRecorder
from repro.middleware.protocol import (
    ERROR_TYPES,
    SUPPORTED_VERSIONS,
    AttributeBlock,
    CloseSession,
    DuplicateSessionError,
    ErrorInfo,
    FramingError,
    FrameTooLargeError,
    Hello,
    InvalidRequestError,
    OpenSession,
    ProtocolError,
    SessionClosedError,
    SessionInfo,
    SessionNotFoundError,
    TilePayload,
    TileRef,
    TileRequest,
    TileResponse,
    VersionMismatchError,
    Welcome,
    negotiate_version,
)
from repro.tiles.key import TileKey
from repro.tiles.moves import Move
from repro.tiles.tile import DataTile


def roundtrip(message):
    """encode -> JSON string -> decode."""
    encoded = protocol.encode(message)
    json.loads(encoded)  # must be valid JSON, not just a repr
    return protocol.decode(encoded)


class TestTileRef:
    def test_key_round_trip(self):
        key = TileKey(3, 5, 2)
        assert TileRef.from_key(key).to_key() == key

    def test_list_round_trip(self):
        ref = TileRef(2, 1, 3)
        assert TileRef.from_list(ref.to_list()) == ref


class TestTilePayload:
    def test_payload_round_trip_is_lossless(self):
        tile = DataTile(
            key=TileKey(2, 1, 0),
            attributes={
                "ndsi_avg": np.linspace(-1.0, 1.0, 16).reshape(4, 4),
                "count": np.arange(16, dtype="int32").reshape(4, 4),
            },
        )
        payload = TilePayload.from_tile(tile)
        rebuilt = TilePayload.from_dict(
            json.loads(json.dumps(payload.to_dict()))
        )
        assert rebuilt == payload
        restored = rebuilt.to_tile()
        assert restored.key == tile.key
        for name, array in tile.attributes.items():
            assert restored.attributes[name].dtype == array.dtype
            np.testing.assert_array_equal(restored.attributes[name], array)

    def test_float32_exact(self):
        array = np.asarray([0.1, 2.0 / 3.0], dtype="float32")
        block = AttributeBlock.from_array("v", array.reshape(1, 2))
        rebuilt = AttributeBlock.from_dict(
            json.loads(json.dumps(block.to_dict()))
        ).to_array()
        assert rebuilt.dtype == np.float32
        np.testing.assert_array_equal(rebuilt, array.reshape(1, 2))


class TestMessages:
    def test_tile_request_round_trip(self):
        request = TileRequest(
            session_id="s1",
            tile=TileRef(2, 1, 1),
            move=Move.PAN_RIGHT.value,
        )
        assert roundtrip(request) == request
        assert roundtrip(request).to_move() is Move.PAN_RIGHT

    def test_start_request_has_no_move(self):
        request = TileRequest(session_id="s1", tile=TileRef(0, 0, 0))
        assert roundtrip(request) == request
        assert roundtrip(request).to_move() is None

    def test_unknown_move_rejected(self):
        request = TileRequest(
            session_id="s1", tile=TileRef(0, 0, 0), move="teleport"
        )
        with pytest.raises(InvalidRequestError):
            request.to_move()

    def test_tile_response_round_trip(self):
        tile = DataTile(
            key=TileKey(1, 0, 1),
            attributes={"v": np.ones((2, 2))},
        )
        response = TileResponse(
            session_id="s1",
            tile=TileRef(1, 0, 1),
            latency_seconds=0.0195,
            hit=True,
            phase="foraging",
            prefetched=(TileRef(1, 1, 1), TileRef(0, 0, 0)),
            payload=TilePayload.from_tile(tile),
        )
        assert roundtrip(response) == response

    def test_session_info_round_trip(self):
        info = SessionInfo(
            session_id="s9",
            open=True,
            prefetch_mode="background",
            requests=12,
            hits=9,
            hit_rate=0.75,
            average_latency_seconds=0.05,
        )
        assert roundtrip(info) == info

    @pytest.mark.parametrize(
        "exc_type",
        sorted(ERROR_TYPES.values(), key=lambda cls: cls.code),
        ids=lambda cls: cls.code,
    )
    def test_error_round_trip_and_reraise(self, exc_type):
        """Every typed exception survives the wire as exactly itself."""
        original = exc_type("boom", session_id="s3")
        info = ErrorInfo.from_exception(original)
        back = roundtrip(info)
        assert back == info
        raised = back.to_exception()
        assert type(raised) is exc_type
        assert raised.message == "boom"
        assert raised.session_id == "s3"

    @pytest.mark.parametrize(
        ("exc_type", "legacy_base"),
        [
            (SessionNotFoundError, KeyError),
            (DuplicateSessionError, ValueError),
            (SessionClosedError, RuntimeError),
            (InvalidRequestError, ValueError),
            (FramingError, ValueError),
            (FrameTooLargeError, FramingError),
            (VersionMismatchError, ValueError),
        ],
        ids=lambda arg: getattr(arg, "code", arg.__name__),
    )
    def test_reraised_errors_keep_their_legacy_bases(
        self, exc_type, legacy_base
    ):
        """Catching by builtin base still works after a wire round trip."""
        raised = roundtrip(
            ErrorInfo.from_exception(exc_type("boom"))
        ).to_exception()
        assert isinstance(raised, legacy_base)
        assert isinstance(raised, ProtocolError)

    def test_foreign_exception_maps_to_base_error(self):
        info = ErrorInfo.from_exception(ZeroDivisionError("np"))
        assert info.code == ProtocolError.code
        assert isinstance(info.to_exception(), ProtocolError)

    def test_unknown_error_code_degrades_to_base_error(self):
        """A newer server's error code still raises *something* typed."""
        raised = ErrorInfo(code="quota_exceeded", message="nope").to_exception()
        assert type(raised) is ProtocolError
        assert raised.message == "nope"


class TestPayloadEdgeCases:
    @pytest.mark.parametrize(
        "values",
        [
            [float("nan"), 1.0, 2.0],
            [float("inf"), float("-inf"), 0.0],
            [float("nan"), float("inf"), float("-inf")],
        ],
        ids=["nan", "inf", "mixed"],
    )
    def test_non_finite_floats_survive_the_wire(self, values):
        tile = DataTile(
            key=TileKey(1, 0, 0),
            attributes={"v": np.asarray(values).reshape(1, len(values))},
        )
        payload = TilePayload.from_tile(tile)
        rebuilt = TilePayload.from_dict(
            json.loads(json.dumps(payload.to_dict()))
        ).to_tile()
        # assert_array_equal treats NaN as equal to NaN (exact positions).
        np.testing.assert_array_equal(
            rebuilt.attributes["v"], tile.attributes["v"]
        )

    @pytest.mark.parametrize(
        "shape", [(0,), (0, 4), (4, 0)], ids=["0", "0x4", "4x0"]
    )
    def test_zero_size_arrays_survive_the_wire(self, shape):
        array = np.zeros(shape, dtype="float32")
        block = AttributeBlock.from_array("empty", array)
        rebuilt = AttributeBlock.from_dict(
            json.loads(json.dumps(block.to_dict()))
        ).to_array()
        assert rebuilt.shape == shape
        assert rebuilt.dtype == np.float32
        assert rebuilt.size == 0

    def test_zero_size_payload_in_full_response(self):
        tile = DataTile(
            key=TileKey(2, 1, 1),
            attributes={"v": np.zeros((0, 0), dtype="int16")},
        )
        response = TileResponse(
            session_id="s1",
            tile=TileRef(2, 1, 1),
            latency_seconds=0.0195,
            hit=True,
            payload=TilePayload.from_tile(tile),
        )
        back = roundtrip(response)
        restored = back.payload.to_tile()
        assert restored.attributes["v"].shape == (0, 0)
        assert restored.attributes["v"].dtype == np.int16


class TestForwardCompatibility:
    """Unknown fields from a newer peer are ignored, never fatal."""

    @pytest.mark.parametrize(
        "message",
        [
            TileRequest(session_id="s1", tile=TileRef(1, 0, 0), move="pan_right"),
            TileResponse(
                session_id="s1",
                tile=TileRef(1, 0, 0),
                latency_seconds=0.02,
                hit=True,
            ),
            SessionInfo(
                session_id="s1",
                open=True,
                prefetch_mode="sync",
                requests=1,
                hits=1,
                hit_rate=1.0,
                average_latency_seconds=0.02,
            ),
            ErrorInfo(code="error", message="boom"),
            Hello(versions=(1,), client="c"),
            Welcome(version=1, server="s", max_frame_bytes=4096),
            OpenSession(session_id="s1"),
            CloseSession(session_id="s1"),
        ],
        ids=lambda m: type(m).__name__,
    )
    def test_unknown_fields_are_ignored(self, message):
        encoded = json.loads(protocol.encode(message))
        encoded["x_future_extension"] = {"nested": [1, 2, 3]}
        assert protocol.decode(json.dumps(encoded)) == message

    def test_unknown_fields_inside_payload_blocks(self):
        block = AttributeBlock.from_array("v", np.ones((2, 2)))
        data = block.to_dict()
        data["compression"] = "none"
        assert AttributeBlock.from_dict(data) == block


class TestControlEnvelope:
    def test_hello_round_trip(self):
        hello = Hello(versions=(1, 2), client="browser/9")
        assert roundtrip(hello) == hello

    def test_welcome_round_trip(self):
        welcome = Welcome(version=1, server="forecache", max_frame_bytes=8192)
        assert roundtrip(welcome) == welcome

    def test_open_close_round_trip(self):
        assert roundtrip(OpenSession(session_id=None)) == OpenSession()
        assert roundtrip(OpenSession(session_id="s1")) == OpenSession("s1")
        assert roundtrip(CloseSession(session_id="s1")) == CloseSession("s1")

    def test_negotiate_picks_highest_common(self):
        assert negotiate_version((0, 1, 99)) == max(SUPPORTED_VERSIONS)

    def test_negotiate_rejects_disjoint_offer(self):
        with pytest.raises(VersionMismatchError):
            negotiate_version((99, 100))
        with pytest.raises(VersionMismatchError):
            negotiate_version(())


class TestEnvelope:
    def test_decode_rejects_garbage(self):
        with pytest.raises(InvalidRequestError):
            protocol.decode("{not json")

    def test_decode_rejects_non_string_type_tag(self):
        # An unhashable tag must be a typed rejection, not a TypeError.
        with pytest.raises(InvalidRequestError):
            protocol.decode(json.dumps({"type": ["hello"], "versions": [1]}))
        with pytest.raises(InvalidRequestError):
            protocol.decode(json.dumps({"type": 7}))

    def test_decode_rejects_deeply_nested_json(self):
        # Deep nesting exhausts json.loads' recursion; typed, not a crash.
        with pytest.raises(InvalidRequestError):
            protocol.decode("[" * 100000)

    def test_decode_rejects_unknown_type(self):
        with pytest.raises(InvalidRequestError):
            protocol.decode(json.dumps({"type": "warp_drive"}))

    def test_decode_rejects_non_object(self):
        with pytest.raises(InvalidRequestError):
            protocol.decode(json.dumps([1, 2, 3]))

    def test_decode_rejects_missing_fields(self):
        with pytest.raises(InvalidRequestError):
            protocol.decode(json.dumps({"type": "tile_request"}))

    def test_encode_rejects_non_messages(self):
        with pytest.raises(TypeError):
            protocol.encode({"session_id": "s1"})


class TestLatencyRecorderExport:
    def test_dict_round_trip(self):
        recorder = LatencyRecorder()
        recorder.record(0.0195, True)
        recorder.record(0.984, False)
        recorder.record(0.0195, True)
        rebuilt = LatencyRecorder.from_dict(recorder.to_dict())
        assert rebuilt == recorder

    def test_json_round_trip(self):
        recorder = LatencyRecorder()
        recorder.record(0.1, False)
        rebuilt = LatencyRecorder.from_json(recorder.to_json())
        assert rebuilt.latencies == recorder.latencies
        assert rebuilt.hits == recorder.hits

    def test_summary_fields(self):
        recorder = LatencyRecorder()
        for latency in (0.1, 0.2, 0.3, 0.4):
            recorder.record(latency, latency < 0.25)
        data = recorder.to_dict(include_latencies=False)
        assert "latencies" not in data
        assert data["count"] == 4
        assert data["hits"] == 2
        assert data["hit_rate"] == pytest.approx(0.5)
        assert data["average_seconds"] == pytest.approx(0.25)
        assert data["p95_seconds"] == pytest.approx(0.4)
        json.dumps(data)  # JSON-ready

    def test_summary_only_cannot_round_trip(self):
        recorder = LatencyRecorder()
        recorder.record(0.1, True)
        with pytest.raises(ValueError):
            LatencyRecorder.from_dict(
                recorder.to_dict(include_latencies=False)
            )
