"""End-to-end integration tests: the full ForeCache stack."""

import numpy as np
import pytest

from repro.core.allocation import PaperFinalStrategy
from repro.core.engine import PredictionEngine
from repro.experiments.accuracy import replay_engine
from repro.middleware.client import BrowsingSession
from repro.middleware.server import ForeCacheServer
from repro.phases.classifier import PhaseClassifier
from repro.recommenders.markov import MarkovRecommender
from repro.recommenders.signature_based import SignatureBasedRecommender
from repro.tiles.moves import Move


@pytest.fixture(scope="module")
def full_stack(small_dataset, small_study, provider):
    """A trained two-level engine behind a live server."""
    train = small_study.excluding_user(1)
    ab = MarkovRecommender(order=3)
    ab.train(train)
    sb = SignatureBasedRecommender(provider, ("histogram",))
    classifier = PhaseClassifier()
    classifier.fit_traces(train)
    engine = PredictionEngine(
        small_dataset.pyramid.grid,
        {ab.name: ab, sb.name: sb},
        PaperFinalStrategy(ab.name, sb.name),
        phase_predictor=classifier.predict,
    )
    return ForeCacheServer(small_dataset.pyramid, engine, prefetch_k=5)


class TestFullStack:
    def test_interactive_walk(self, full_stack):
        """Drive a live session through pans and zooms."""
        full_stack.reset_session()
        session = BrowsingSession(full_stack)
        response = session.start()
        assert response.tile.shape == (32, 32)
        for move in (
            Move.ZOOM_IN_NW,
            Move.ZOOM_IN_SE,
            Move.PAN_RIGHT,
            Move.PAN_DOWN,
            Move.ZOOM_OUT,
        ):
            response = session.move(move)
            assert response.tile.key == session.current
            assert response.phase is not None
        assert full_stack.recorder.count == 6

    def test_replay_heldout_user(self, full_stack, small_study):
        """Replaying the held-out user's traces produces decent hit rates."""
        latencies = []
        for trace in small_study.by_user(1):
            full_stack.reset_session()
            session = BrowsingSession(full_stack)
            session.replay(trace)
            latencies.append(full_stack.recorder.average_seconds)
        # Far better than the no-prefetch 984 ms.
        assert np.mean(latencies) < 0.65

    def test_accuracy_replay_of_hybrid(
        self, full_stack, small_study
    ):
        result = replay_engine(
            full_stack.engine, small_study.by_user(1), ks=(5, 9)
        )
        assert result.accuracy(9) == pytest.approx(1.0)
        assert result.accuracy(5) > 0.5

    def test_phase_attribution_present(self, full_stack):
        full_stack.reset_session()
        session = BrowsingSession(full_stack)
        session.start()
        response = session.move(Move.ZOOM_IN_NW)
        assert response.phase is not None
        usage = full_stack.cache_manager.cache.model_usage()
        assert sum(usage.values()) == len(response.prefetched)


class TestVirtualTimeConsistency:
    def test_clock_monotone_through_session(self, small_dataset, full_stack):
        clock = small_dataset.db.clock
        before = clock.now()
        full_stack.reset_session()
        session = BrowsingSession(full_stack)
        session.start()
        session.move(Move.ZOOM_IN_NW)
        assert clock.now() >= before


class TestExperimentContextIntegration:
    def test_tiny_context_builds_and_evaluates(self):
        """A miniature end-to-end experiment: context, CV, accuracy."""
        from repro.experiments.context import ExperimentContext
        from repro.experiments.crossval import evaluate_engine_cv

        context = ExperimentContext.build(
            size=256, num_users=2, days=1, num_words=8
        )
        result = evaluate_engine_cv(context.study, context.momentum_engine, ks=(9,))
        assert result.accuracy(9) == pytest.approx(1.0)
