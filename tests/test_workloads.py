"""The sweep's synthetic workload generators.

Both generators must produce *valid* walks — every step is a legal
``(move, key)`` transition on the grid, starting with ``(None, start)``
— and must be pure functions of their seeds, because the bench
trajectory gates on metrics replayed from them.
"""

import numpy as np
import pytest

from repro.tiles.pyramid import TileGrid
from repro.users.adversarial import adversarial_walks
from repro.users.flashcrowd import flash_crowd_walks


@pytest.fixture(scope="module")
def grid() -> TileGrid:
    return TileGrid(4)  # levels 0..3, 8x8 at the deepest


def assert_valid_walk(grid: TileGrid, walk) -> None:
    move0, start = walk[0]
    assert move0 is None
    assert grid.valid(start)
    current = start
    for move, key in walk[1:]:
        assert move is not None
        assert grid.apply(current, move) == key
        current = key


class TestAdversarialWalks:
    def test_walks_are_valid(self, grid):
        for walk in adversarial_walks(grid, num_users=4, steps=40, seed=3):
            assert_valid_walk(grid, walk)

    def test_shape(self, grid):
        walks = adversarial_walks(grid, num_users=3, steps=17, seed=0)
        assert len(walks) == 3
        assert all(len(walk) == 18 for walk in walks)  # start + steps

    def test_deterministic_per_seed(self, grid):
        a = adversarial_walks(grid, num_users=2, steps=25, seed=5)
        b = adversarial_walks(grid, num_users=2, steps=25, seed=5)
        c = adversarial_walks(grid, num_users=2, steps=25, seed=6)
        assert a == b
        assert a != c

    def test_users_start_apart_and_diverge(self, grid):
        walks = adversarial_walks(grid, num_users=4, steps=30, seed=1)
        starts = {walk[0][1] for walk in walks}
        assert len(starts) == 4
        assert len({tuple(walk) for walk in walks}) == 4

    def test_momentum_hostile_avoids_repeating_moves(self, grid):
        walks = adversarial_walks(
            grid, num_users=2, steps=200, seed=2, momentum_hostile=True
        )
        for walk in walks:
            moves = [move for move, _ in walk[1:]]
            repeats = sum(
                1 for a, b in zip(moves, moves[1:]) if a == b
            )
            # A repeat is only allowed when it was the sole legal move;
            # on an 8x8 grid that is rare, and a momentum model that
            # bets on repetition must lose most of its predictions.
            assert repeats < len(moves) * 0.1

    def test_validation(self, grid):
        with pytest.raises(ValueError):
            adversarial_walks(grid, num_users=0)
        with pytest.raises(ValueError):
            adversarial_walks(grid, steps=0)
        with pytest.raises(ValueError):
            adversarial_walks(grid, start_level=99)


class TestFlashCrowdWalks:
    def test_walks_are_valid(self, grid):
        for walk in flash_crowd_walks(
            grid, num_users=4, bursts=2, wander=4, dwell=2, seed=9
        ):
            assert_valid_walk(grid, walk)

    def test_deterministic_per_seed(self, grid):
        a = flash_crowd_walks(grid, num_users=3, seed=4)
        b = flash_crowd_walks(grid, num_users=3, seed=4)
        c = flash_crowd_walks(grid, num_users=3, seed=5)
        assert a == b
        assert a != c

    def test_users_converge_on_burst_tiles(self, grid):
        """The point of the workload: during each burst every user
        dwells on the same tile, so cross-user sharing has a target."""
        num_users, dwell = 4, 3
        walks = flash_crowd_walks(
            grid, num_users=num_users, bursts=2, wander=4, dwell=dwell, seed=0
        )
        tiles_per_user = [
            {key for _, key in walk} for walk in walks
        ]
        shared = set.intersection(*tiles_per_user)
        # Each burst contributes its target tile (and the dwell
        # neighbor) to every user's walk.
        assert len(shared) >= 2

    def test_single_level(self, grid):
        level = grid.deepest_level
        for walk in flash_crowd_walks(grid, num_users=2, seed=1):
            assert all(key.level == level for _, key in walk)

    def test_explicit_level(self, grid):
        for walk in flash_crowd_walks(grid, num_users=2, seed=1, level=2):
            assert all(key.level == 2 for _, key in walk)

    def test_validation(self, grid):
        with pytest.raises(ValueError):
            flash_crowd_walks(grid, num_users=0)
        with pytest.raises(ValueError):
            flash_crowd_walks(grid, bursts=0)
        with pytest.raises(ValueError):
            flash_crowd_walks(grid, dwell=-1)
        with pytest.raises(ValueError):
            flash_crowd_walks(grid, level=99)


class TestReplayThroughService:
    """The generators exist to be replayed; make sure they are
    servable end to end and that momentum really suffers on the
    adversarial walks relative to the crowd's convergent dwells."""

    @pytest.fixture(scope="class")
    def pyramid(self):
        from repro.modis.dataset import MODISDataset

        return MODISDataset.build(size=64, tile_size=8, days=1, seed=3).pyramid

    def _replay(self, pyramid, walks):
        from repro.core.allocation import SingleModelStrategy
        from repro.core.engine import PredictionEngine
        from repro.middleware.service import ForeCacheService
        from repro.recommenders.momentum import MomentumRecommender

        def factory():
            model = MomentumRecommender()
            return PredictionEngine(
                pyramid.grid,
                {model.name: model},
                SingleModelStrategy(model.name),
            )

        hits = requests = 0
        with ForeCacheService(pyramid, engine_factory=factory) as service:
            for index, walk in enumerate(walks):
                with service.open_session(
                    session_id=f"user-{index}"
                ) as handle:
                    for move, key in walk:
                        response = handle.request(move, key)
                        hits += bool(response.hit)
                        requests += 1
        return hits / requests

    def test_both_workloads_replay(self, pyramid):
        grid = pyramid.grid
        adversarial_rate = self._replay(
            pyramid, adversarial_walks(grid, num_users=2, steps=30, seed=7)
        )
        crowd_rate = self._replay(
            pyramid,
            flash_crowd_walks(
                grid, num_users=2, bursts=2, wander=4, dwell=4, seed=7
            ),
        )
        assert 0.0 <= adversarial_rate <= 1.0
        assert 0.0 <= crowd_rate <= 1.0
        # Dwelling on one tile is maximally cache-friendly; hostile
        # random walks are the opposite.
        assert crowd_rate > adversarial_rate


def test_numpy_seeding_is_stable():
    """The generators pin their streams via SeedSequence spawn keys;
    a numpy upgrade changing default_rng seeding would silently shift
    every persisted trajectory, so pin one sentinel draw."""
    rng = np.random.default_rng(np.random.SeedSequence([3, 1]))
    assert int(rng.integers(0, 1_000_000)) == 978228
