"""Unit tests for the phase model, features, labeler, SVM, classifier."""

import numpy as np
import pytest

from repro.phases.classifier import PhaseClassifier
from repro.phases.features import FEATURE_NAMES, feature_vector, trace_features
from repro.phases.labeler import (
    detail_cutoff,
    label_agreement,
    label_trace,
    model_fit_fraction,
)
from repro.phases.model import ALL_PHASES, AnalysisPhase
from repro.phases.svm import SMOTrainer, rbf_kernel
from repro.tiles.key import TileKey
from repro.tiles.moves import Move
from repro.users.session import Request, Trace

P = AnalysisPhase


class TestPhaseModel:
    def test_three_phases(self):
        assert len(ALL_PHASES) == 3

    def test_from_string_roundtrip(self):
        for phase in ALL_PHASES:
            assert AnalysisPhase.from_string(phase.value) is phase

    def test_from_string_unknown(self):
        with pytest.raises(ValueError):
            AnalysisPhase.from_string("daydreaming")


class TestFeatures:
    def test_vector_layout(self):
        vec = feature_vector(TileKey(3, 5, 2), Move.PAN_LEFT)
        assert len(vec) == len(FEATURE_NAMES) == 6
        assert vec[0] == 5.0  # x
        assert vec[1] == 2.0  # y
        assert vec[2] == 3.0  # level
        np.testing.assert_array_equal(vec[3:], [1.0, 0.0, 0.0])

    def test_zoom_in_flag(self):
        vec = feature_vector(TileKey(1, 0, 0), Move.ZOOM_IN_SE)
        np.testing.assert_array_equal(vec[3:], [0.0, 1.0, 0.0])

    def test_zoom_out_flag(self):
        vec = feature_vector(TileKey(1, 0, 0), Move.ZOOM_OUT)
        np.testing.assert_array_equal(vec[3:], [0.0, 0.0, 1.0])

    def test_initial_request_no_flags(self):
        vec = feature_vector(TileKey(0, 0, 0), None)
        np.testing.assert_array_equal(vec[3:], [0.0, 0.0, 0.0])

    def test_trace_features_skips_unlabeled(self):
        trace = Trace(
            user_id=1,
            task_id=1,
            requests=[
                Request(0, TileKey(0, 0, 0), None, P.FORAGING),
                Request(1, TileKey(1, 0, 0), Move.ZOOM_IN_NW, None),
            ],
        )
        features, labels = trace_features([trace])
        assert features.shape == (1, 6)
        assert labels == [P.FORAGING]

    def test_trace_features_empty(self):
        features, labels = trace_features([])
        assert features.shape == (0, 6)
        assert labels == []


class TestLabeler:
    def test_detail_cutoff_nine_levels(self):
        # Paper: 9 levels, tasks at levels 6-8 are "detailed".
        assert detail_cutoff(9) == 6

    def test_detail_cutoff_minimum(self):
        assert detail_cutoff(1) >= 1

    def test_zooms_are_navigation(self):
        trace = Trace(
            user_id=1,
            task_id=1,
            requests=[
                Request(0, TileKey(0, 0, 0), None),
                Request(1, TileKey(1, 1, 0), Move.ZOOM_IN_NE),
                Request(2, TileKey(0, 0, 0), Move.ZOOM_OUT),
            ],
        )
        labels = label_trace(trace, num_levels=4)
        assert labels[1] is P.NAVIGATION
        assert labels[2] is P.NAVIGATION

    def test_detail_pans_are_sensemaking(self):
        trace = Trace(
            user_id=1,
            task_id=1,
            requests=[Request(0, TileKey(3, 1, 1), Move.PAN_LEFT)],
        )
        assert label_trace(trace, num_levels=4)[0] is P.SENSEMAKING

    def test_coarse_pans_are_foraging(self):
        trace = Trace(
            user_id=1,
            task_id=1,
            requests=[Request(0, TileKey(1, 1, 1), Move.PAN_LEFT)],
        )
        assert label_trace(trace, num_levels=4)[0] is P.FORAGING

    def test_agreement_on_generated_traces(self, small_study, small_dataset):
        """The heuristic labeler broadly agrees with generation labels
        (divergences are the peek/verification zooms)."""
        total = 0.0
        weight = 0
        for trace in small_study.traces:
            total += label_agreement(trace, small_dataset.num_levels) * len(trace)
            weight += len(trace)
        assert total / weight > 0.55

    def test_model_fit_on_generated_traces(self, small_study, small_dataset):
        """Nearly all requests fit the three-phase model (paper: 96%)."""
        total = 0.0
        weight = 0
        for trace in small_study.traces:
            total += model_fit_fraction(trace, small_dataset.num_levels) * len(trace)
            weight += len(trace)
        assert total / weight > 0.9


class TestRBFKernel:
    def test_self_similarity_one(self):
        x = np.random.default_rng(0).random((5, 3))
        k = rbf_kernel(x, x, gamma=0.5)
        np.testing.assert_allclose(np.diag(k), np.ones(5))

    def test_bounded(self):
        x = np.random.default_rng(1).random((8, 3))
        k = rbf_kernel(x, x, gamma=1.0)
        assert k.max() <= 1.0 + 1e-12
        assert k.min() >= 0.0

    def test_decreases_with_distance(self):
        a = np.asarray([[0.0]])
        assert rbf_kernel(a, [[1.0]], 1.0)[0, 0] > rbf_kernel(a, [[2.0]], 1.0)[0, 0]


class TestSMO:
    def _blobs(self, n=40, gap=2.0, seed=0):
        rng = np.random.default_rng(seed)
        x = np.vstack([
            rng.normal(-gap / 2, 0.4, (n // 2, 2)),
            rng.normal(gap / 2, 0.4, (n // 2, 2)),
        ])
        y = np.concatenate([-np.ones(n // 2), np.ones(n // 2)])
        return x, y

    def test_separable_blobs(self):
        x, y = self._blobs()
        model = SMOTrainer(c=10.0, seed=0).fit(x, y)
        accuracy = np.mean(model.predict(x) == y)
        assert accuracy > 0.95

    def test_xor_needs_kernel(self):
        """RBF SVM must solve XOR — linearly inseparable."""
        rng = np.random.default_rng(3)
        centers = np.asarray([[0, 0], [1, 1], [0, 1], [1, 0]], dtype=float)
        labels = np.asarray([1.0, 1.0, -1.0, -1.0])
        x = np.vstack([c + rng.normal(0, 0.08, (20, 2)) for c in centers])
        y = np.concatenate([np.full(20, l) for l in labels])
        model = SMOTrainer(c=10.0, gamma=5.0, seed=0).fit(x, y)
        assert np.mean(model.predict(x) == y) > 0.9

    def test_single_class_degenerates(self):
        x = np.random.default_rng(0).random((10, 2))
        y = np.ones(10)
        model = SMOTrainer().fit(x, y)
        assert np.all(model.predict(x) == 1.0)

    def test_support_vectors_subset(self):
        x, y = self._blobs()
        model = SMOTrainer(seed=0).fit(x, y)
        assert 0 < model.num_support_vectors <= len(x)

    def test_bad_labels_rejected(self):
        with pytest.raises(ValueError):
            SMOTrainer().fit(np.zeros((2, 2)), np.asarray([0.0, 1.0]))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            SMOTrainer().fit(np.zeros((3, 2)), np.ones(2))

    def test_bad_c_rejected(self):
        with pytest.raises(ValueError):
            SMOTrainer(c=0.0)

    def test_decision_function_sign_matches_predict(self):
        x, y = self._blobs()
        model = SMOTrainer(seed=0).fit(x, y)
        decisions = model.decision_function(x)
        np.testing.assert_array_equal(np.sign(decisions) >= 0, model.predict(x) > 0)


class TestPhaseClassifier:
    def _labeled_data(self, n=120, seed=0):
        """Synthetic but realistic feature clusters per phase."""
        rng = np.random.default_rng(seed)
        rows, labels = [], []
        for _ in range(n // 3):
            # Foraging: coarse level, pan flag.
            rows.append([rng.integers(0, 4), rng.integers(0, 4), 1, 1, 0, 0])
            labels.append(P.FORAGING)
            # Navigation: mid level, zoom flags.
            zoom_in = rng.random() < 0.5
            rows.append(
                [rng.integers(0, 8), rng.integers(0, 8), 3, 0, int(zoom_in), int(not zoom_in)]
            )
            labels.append(P.NAVIGATION)
            # Sensemaking: deep level, pan flag.
            rows.append([rng.integers(0, 32), rng.integers(0, 32), 5, 1, 0, 0])
            labels.append(P.SENSEMAKING)
        return np.asarray(rows, dtype=float), labels

    def test_learns_separable_phases(self):
        features, labels = self._labeled_data()
        classifier = PhaseClassifier().fit(features, labels)
        assert classifier.accuracy(features, labels) > 0.9

    def test_predict_single(self):
        features, labels = self._labeled_data()
        classifier = PhaseClassifier().fit(features, labels)
        phase = classifier.predict(TileKey(5, 10, 12), Move.PAN_LEFT)
        assert phase is P.SENSEMAKING

    def test_feature_subset(self):
        features, labels = self._labeled_data()
        classifier = PhaseClassifier(feature_indices=[2]).fit(features, labels)
        # Zoom level alone separates this synthetic data well.
        assert classifier.accuracy(features, labels) > 0.9

    def test_invalid_feature_index(self):
        with pytest.raises(ValueError):
            PhaseClassifier(feature_indices=[99])

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            PhaseClassifier().predict(TileKey(0, 0, 0), None)

    def test_empty_training_rejected(self):
        with pytest.raises(ValueError):
            PhaseClassifier().fit(np.zeros((0, 6)), [])

    def test_label_count_mismatch(self):
        with pytest.raises(ValueError):
            PhaseClassifier().fit(np.zeros((3, 6)), [P.FORAGING])

    def test_fit_traces(self, small_study):
        classifier = PhaseClassifier().fit_traces(small_study.traces)
        features, labels = trace_features(small_study.traces)
        # Training accuracy on real traces should beat the base rate.
        base = max(labels.count(p) for p in ALL_PHASES) / len(labels)
        assert classifier.accuracy(features, labels) > base
