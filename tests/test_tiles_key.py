"""Unit tests for tile keys and quadtree coordinate math."""

import pytest

from repro.tiles.key import TileKey
from repro.tiles.moves import Move


class TestConstruction:
    def test_rejects_negative_level(self):
        with pytest.raises(ValueError):
            TileKey(-1, 0, 0)

    def test_rejects_negative_coords(self):
        with pytest.raises(ValueError):
            TileKey(1, -1, 0)

    def test_is_hashable_value(self):
        assert TileKey(1, 0, 1) == TileKey(1, 0, 1)
        assert len({TileKey(1, 0, 1), TileKey(1, 0, 1)}) == 1


class TestQuadtreeRelations:
    def test_children_count_and_level(self):
        children = TileKey(1, 1, 0).children()
        assert len(children) == 4
        assert all(c.level == 2 for c in children)

    def test_children_coordinates(self):
        children = set(TileKey(1, 1, 1).children())
        assert children == {
            TileKey(2, 2, 2),
            TileKey(2, 3, 2),
            TileKey(2, 2, 3),
            TileKey(2, 3, 3),
        }

    def test_parent_inverts_child(self):
        key = TileKey(3, 5, 2)
        for child in key.children():
            assert child.parent == key

    def test_root_has_no_parent(self):
        with pytest.raises(ValueError):
            _ = TileKey(0, 0, 0).parent

    def test_quadrant(self):
        assert TileKey(2, 3, 2).quadrant == (1, 0)

    def test_child_quadrant_roundtrip(self):
        key = TileKey(2, 1, 3)
        for dx in (0, 1):
            for dy in (0, 1):
                assert key.child(dx, dy).quadrant == (dx, dy)

    def test_child_bad_offsets(self):
        with pytest.raises(ValueError):
            TileKey(0, 0, 0).child(2, 0)

    def test_ancestor(self):
        key = TileKey(4, 13, 6)
        assert key.ancestor(4) == key
        assert key.ancestor(2) == TileKey(2, 3, 1)
        assert key.ancestor(0) == TileKey(0, 0, 0)

    def test_ancestor_deeper_raises(self):
        with pytest.raises(ValueError):
            TileKey(2, 1, 1).ancestor(3)

    def test_contains(self):
        parent = TileKey(1, 0, 0)
        assert parent.contains(TileKey(3, 2, 3))
        assert not parent.contains(TileKey(3, 4, 0))
        assert not parent.contains(TileKey(0, 0, 0))


class TestMovement:
    def test_apply_pan(self):
        assert TileKey(2, 1, 1).apply(Move.PAN_RIGHT) == TileKey(2, 2, 1)
        assert TileKey(2, 1, 1).apply(Move.PAN_UP) == TileKey(2, 1, 0)

    def test_apply_zoom(self):
        assert TileKey(1, 1, 0).apply(Move.ZOOM_IN_SW) == TileKey(2, 2, 1)
        assert TileKey(2, 2, 1).apply(Move.ZOOM_OUT) == TileKey(1, 1, 0)

    def test_move_to_pan(self):
        assert TileKey(2, 1, 1).move_to(TileKey(2, 2, 1)) is Move.PAN_RIGHT

    def test_move_to_zoom_in(self):
        assert TileKey(1, 1, 0).move_to(TileKey(2, 3, 1)) is Move.ZOOM_IN_SE

    def test_move_to_zoom_out(self):
        assert TileKey(2, 3, 1).move_to(TileKey(1, 1, 0)) is Move.ZOOM_OUT

    def test_move_to_unreachable(self):
        assert TileKey(2, 0, 0).move_to(TileKey(2, 2, 0)) is None
        assert TileKey(2, 0, 0).move_to(TileKey(2, 1, 1)) is None
        assert TileKey(1, 1, 0).move_to(TileKey(2, 0, 0)) is None
        assert TileKey(0, 0, 0).move_to(TileKey(3, 0, 0)) is None

    def test_every_move_is_invertible(self):
        key = TileKey(3, 4, 5)
        for move in Move:
            try:
                target = key.apply(move)
            except ValueError:
                continue
            assert target.move_to(key) is not None


class TestManhattanDistance:
    def test_same_level(self):
        assert TileKey(3, 1, 1).manhattan_distance(TileKey(3, 4, 3)) == 5

    def test_symmetric(self):
        a, b = TileKey(3, 1, 1), TileKey(2, 3, 0)
        assert a.manhattan_distance(b) == b.manhattan_distance(a)

    def test_self_distance_zero(self):
        key = TileKey(2, 1, 3)
        assert key.manhattan_distance(key) == 0

    def test_one_zoom_away(self):
        parent = TileKey(2, 1, 1)
        # The SE child's projected center coincides with the parent's.
        assert parent.manhattan_distance(parent.child(1, 1)) == 1

    def test_cross_level_includes_level_gap(self):
        assert TileKey(0, 0, 0).manhattan_distance(TileKey(2, 0, 0)) >= 2


class TestNormalizedGeometry:
    def test_root_covers_unit_square(self):
        assert TileKey(0, 0, 0).normalized_bounds() == (0.0, 0.0, 1.0, 1.0)

    def test_level1_quadrant(self):
        assert TileKey(1, 1, 0).normalized_bounds() == (0.5, 0.0, 1.0, 0.5)

    def test_center_inside_bounds(self):
        key = TileKey(3, 5, 2)
        x_min, y_min, x_max, y_max = key.normalized_bounds()
        cx, cy = key.normalized_center()
        assert x_min < cx < x_max
        assert y_min < cy < y_max

    def test_children_cover_parent(self):
        key = TileKey(2, 1, 3)
        px0, py0, px1, py1 = key.normalized_bounds()
        xs = set()
        for child in key.children():
            b = child.normalized_bounds()
            assert px0 <= b[0] and b[2] <= px1
            assert py0 <= b[1] and b[3] <= py1
            xs.add(b[:2])
        assert len(xs) == 4


class TestSerialization:
    def test_roundtrip(self):
        key = TileKey(5, 17, 30)
        assert TileKey.from_string(key.to_string()) == key

    def test_malformed(self):
        with pytest.raises(ValueError):
            TileKey.from_string("1/2")
        with pytest.raises(ValueError):
            TileKey.from_string("a/b/c")
