"""Unit tests for the cost model and virtual clock."""

import pytest

from repro.arraydb.cost import CostModel, QueryStats, VirtualClock


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now() == 0.0

    def test_custom_start(self):
        assert VirtualClock(5.0).now() == 5.0

    def test_advance_accumulates(self):
        clock = VirtualClock()
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.now() == pytest.approx(2.0)

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-0.1)


class TestCostModel:
    def test_query_cost_components(self):
        model = CostModel(
            per_query_overhead=1.0,
            per_chunk_overhead=0.1,
            per_cell_scanned=0.01,
            per_cell_computed=0.001,
        )
        cost = model.query_cost(chunks_read=2, cells_scanned=10, cells_computed=100)
        assert cost == pytest.approx(1.0 + 0.2 + 0.1 + 0.1)

    def test_calibrated_hits_target(self):
        model = CostModel.calibrated(tile_cells=1024, miss_seconds=0.9645)
        cost = model.query_cost(chunks_read=1, cells_scanned=1024, cells_computed=0)
        assert cost == pytest.approx(0.9645)

    def test_calibrated_overhead_fraction(self):
        model = CostModel.calibrated(
            tile_cells=100, miss_seconds=1.0, query_overhead_fraction=0.5
        )
        assert model.per_query_overhead == pytest.approx(0.5)

    def test_calibrated_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            CostModel.calibrated(tile_cells=0)
        with pytest.raises(ValueError):
            CostModel.calibrated(tile_cells=10, query_overhead_fraction=1.0)

    def test_bigger_reads_cost_more(self):
        model = CostModel.calibrated(tile_cells=1024)
        small = model.query_cost(1, 1024, 0)
        large = model.query_cost(4, 4096, 0)
        assert large > small


class TestQueryStats:
    def test_merge_read(self):
        stats = QueryStats()
        stats.merge_read(2, 100)
        stats.merge_read(1, 50)
        assert stats.chunks_read == 3
        assert stats.cells_scanned == 150

    def test_merge_compute(self):
        stats = QueryStats()
        stats.merge_compute(10)
        stats.merge_compute(5)
        assert stats.cells_computed == 15
