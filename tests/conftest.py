"""Shared fixtures: small worlds, studies, and signature providers.

Heavy artifacts (datasets, studies, vocabularies) are session-scoped —
tests must treat them as read-only.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.arraydb import ArraySchema, Attribute, Database, Dimension
from repro.modis.dataset import MODISDataset
from repro.signatures.base import SignatureRegistry
from repro.signatures.densesift import DenseSIFTSignature
from repro.signatures.histogram import HistogramSignature
from repro.signatures.provider import SignatureProvider
from repro.signatures.sift import SIFTSignature
from repro.signatures.stats import NormalSignature
from repro.signatures.visualwords import train_vocabulary
from repro.users.study import run_study


@pytest.fixture
def db() -> Database:
    """A fresh in-memory array database."""
    return Database()


@pytest.fixture
def small_array(db: Database):
    """An 8x8 array with one attribute holding 0..63, chunked 4x4."""
    schema = ArraySchema(
        "A",
        attributes=(Attribute("v"),),
        dimensions=(Dimension("y", 0, 8, 4), Dimension("x", 0, 8, 4)),
    )
    db.create_array(schema)
    db.write("A", "v", np.arange(64, dtype="float64").reshape(8, 8))
    return db.array("A")


@pytest.fixture(scope="session")
def tiny_dataset() -> MODISDataset:
    """A 3-level world (128px, 32px tiles) — fast, for geometry tests."""
    return MODISDataset.build(size=128, tile_size=32, days=1, seed=7)


@pytest.fixture(scope="session")
def small_dataset() -> MODISDataset:
    """A 6-level world (1024px, 32px tiles) — has real snow structure
    and satisfiable (scaled) study tasks."""
    return MODISDataset.build(size=1024, tile_size=32, days=1, seed=7)


@pytest.fixture(scope="session")
def small_study(small_dataset):
    """A 4-user study over the small world."""
    return run_study(small_dataset, num_users=4, seed=17)


@pytest.fixture(scope="session")
def small_vocabulary(small_dataset):
    """A small visual vocabulary trained on the small world."""
    return train_vocabulary(
        small_dataset.pyramid,
        "ndsi_avg",
        num_words=12,
        seed=0,
        max_tiles_per_level=12,
    )


@pytest.fixture(scope="session")
def signature_registry(small_vocabulary) -> SignatureRegistry:
    """All four Table 2 signatures."""
    return SignatureRegistry(
        (
            NormalSignature(),
            HistogramSignature(),
            SIFTSignature(small_vocabulary),
            DenseSIFTSignature(small_vocabulary),
        )
    )


@pytest.fixture(scope="session")
def provider(small_dataset, signature_registry) -> SignatureProvider:
    """Signature provider over the small world."""
    return SignatureProvider(small_dataset.pyramid, signature_registry, "ndsi_avg")
